//! The bounded admission queue between the HTTP front-end and the
//! executor threads, plus the job store that tracks every admitted
//! job's lifecycle.
//!
//! The queue is deliberately tiny: a `Mutex<VecDeque>` of canonical
//! keys with a `Condvar` for the executors. Admission never blocks —
//! a full queue is an immediate [`PushError::Full`], which the server
//! turns into `429 Too Many Requests` + `Retry-After`. Only executors
//! block (in [`JobQueue::pop`]), and they wake for work, for drain,
//! and for abort.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use optpower_dist::ShardResultCache;
use optpower_workload::{Artifact, ErrorBody, JobSpec, ShardResult};

/// Why a job could not be queued.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity; retry later.
    Full,
    /// The server is draining and refuses new work.
    Draining,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Lifecycle {
    Running,
    Draining,
    Aborted,
}

#[derive(Debug)]
struct QueueInner {
    jobs: VecDeque<String>,
    capacity: usize,
    paused: bool,
    state: Lifecycle,
}

/// The bounded FIFO of canonical keys awaiting an executor.
#[derive(Debug)]
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    cond: Condvar,
}

impl JobQueue {
    /// A queue admitting at most `capacity` jobs, optionally born
    /// paused (a test hook: executors wait until [`JobQueue::resume`]
    /// even though admission works, so backpressure is deterministic).
    pub fn new(capacity: usize, paused: bool) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                jobs: VecDeque::new(),
                capacity: capacity.max(1),
                paused,
                state: Lifecycle::Running,
            }),
            cond: Condvar::new(),
        }
    }

    /// Enqueues a key, failing fast when full or draining.
    pub fn try_push(&self, key: String) -> Result<(), PushError> {
        let mut inner = self.lock();
        if inner.state != Lifecycle::Running {
            return Err(PushError::Draining);
        }
        if inner.jobs.len() >= inner.capacity {
            return Err(PushError::Full);
        }
        inner.jobs.push_back(key);
        self.cond.notify_one();
        Ok(())
    }

    /// Blocks for the next key. `None` means shut down: the queue
    /// drained after [`JobQueue::drain`], or [`JobQueue::abort`] fired.
    pub fn pop(&self) -> Option<String> {
        let mut inner = self.lock();
        loop {
            match inner.state {
                Lifecycle::Aborted => return None,
                Lifecycle::Draining if inner.jobs.is_empty() => return None,
                _ => {}
            }
            if !inner.paused {
                if let Some(key) = inner.jobs.pop_front() {
                    return Some(key);
                }
            }
            inner = self.cond.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Jobs currently waiting (not counting running ones).
    pub fn depth(&self) -> usize {
        self.lock().jobs.len()
    }

    /// Stops admission and lets executors finish what is queued.
    /// Also unpauses, so a paused queue can still drain to empty.
    pub fn drain(&self) {
        let mut inner = self.lock();
        if inner.state == Lifecycle::Running {
            inner.state = Lifecycle::Draining;
        }
        inner.paused = false;
        self.cond.notify_all();
    }

    /// Stops everything now: queued jobs are dropped unrun.
    pub fn abort(&self) {
        let mut inner = self.lock();
        inner.state = Lifecycle::Aborted;
        inner.jobs.clear();
        self.cond.notify_all();
    }

    /// Whether new work is refused (draining or aborted).
    pub fn is_draining(&self) -> bool {
        self.lock().state != Lifecycle::Running
    }

    /// Releases a paused queue's executors (test hook).
    pub fn resume(&self) {
        let mut inner = self.lock();
        inner.paused = false;
        self.cond.notify_all();
    }

    fn lock(&self) -> MutexGuard<'_, QueueInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// One admitted job's lifecycle state.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// An executor is running it.
    Running,
    /// Finished; the artifact is held for pollers.
    Done(Arc<Artifact>),
    /// Failed; the mapped error is held for pollers.
    Failed(ErrorBody),
}

impl JobState {
    /// The wire spelling used in `optpower-job-status/v1` documents.
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(_) => "failed",
        }
    }

    fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(_))
    }
}

#[derive(Debug)]
struct StoreInner {
    jobs: HashMap<String, (JobSpec, JobState)>,
    /// Terminal keys in completion order, for bounded eviction.
    finished: VecDeque<String>,
    capacity: usize,
}

/// Tracks every admitted job by canonical key so synchronous waiters
/// and `GET /v1/jobs/<key>` pollers observe the same lifecycle.
/// Bounded: terminal entries beyond `capacity` are evicted oldest
/// first (in-flight jobs are never evicted).
#[derive(Debug)]
pub struct JobStore {
    inner: Mutex<StoreInner>,
    cond: Condvar,
}

impl JobStore {
    /// A store retaining at most `capacity` terminal jobs.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(StoreInner {
                jobs: HashMap::new(),
                finished: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            cond: Condvar::new(),
        }
    }

    /// Admits a job as queued unless it is already tracked; returns
    /// whether a queue slot is needed (false = coalesced onto an
    /// existing in-flight or finished entry).
    pub fn admit(&self, key: &str, spec: &JobSpec) -> bool {
        let mut inner = self.lock();
        if inner.jobs.contains_key(key) {
            return false;
        }
        inner
            .jobs
            .insert(key.to_string(), (spec.clone(), JobState::Queued));
        true
    }

    /// Rolls back an admission whose queue push was refused: the
    /// entry is removed only if still queued (an executor that got to
    /// it first owns it now).
    pub fn remove_if_queued(&self, key: &str) {
        let mut inner = self.lock();
        if matches!(inner.jobs.get(key), Some((_, JobState::Queued))) {
            inner.jobs.remove(key);
        }
    }

    /// The tracked state of a key.
    pub fn state(&self, key: &str) -> Option<JobState> {
        self.lock().jobs.get(key).map(|(_, s)| s.clone())
    }

    /// The spec a key was admitted with (executors read it back).
    pub fn spec(&self, key: &str) -> Option<JobSpec> {
        self.lock().jobs.get(key).map(|(s, _)| s.clone())
    }

    /// Marks a job running.
    pub fn mark_running(&self, key: &str) {
        let mut inner = self.lock();
        if let Some((_, state)) = inner.jobs.get_mut(key) {
            *state = JobState::Running;
        }
    }

    /// Records a terminal state and wakes synchronous waiters.
    pub fn finish(&self, key: &str, outcome: JobState) {
        debug_assert!(outcome.is_terminal());
        let mut inner = self.lock();
        if let Some((_, state)) = inner.jobs.get_mut(key) {
            *state = outcome;
            inner.finished.push_back(key.to_string());
            while inner.finished.len() > inner.capacity {
                if let Some(old) = inner.finished.pop_front() {
                    inner.jobs.remove(&old);
                }
            }
        }
        self.cond.notify_all();
    }

    /// Blocks until the key reaches a terminal state or the deadline
    /// passes; `None` on timeout (or if the entry was evicted).
    pub fn wait_terminal(&self, key: &str, timeout: Duration) -> Option<JobState> {
        let deadline = Instant::now() + timeout;
        let mut inner = self.lock();
        loop {
            match inner.jobs.get(key) {
                Some((_, state)) if state.is_terminal() => return Some(state.clone()),
                Some(_) => {}
                None => return None,
            }
            let left = deadline.checked_duration_since(Instant::now())?;
            let (guard, result) = self
                .cond
                .wait_timeout(inner, left)
                .unwrap_or_else(|e| e.into_inner());
            inner = guard;
            if result.timed_out() {
                match inner.jobs.get(key) {
                    Some((_, state)) if state.is_terminal() => return Some(state.clone()),
                    _ => return None,
                }
            }
        }
    }

    fn lock(&self) -> MutexGuard<'_, StoreInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug)]
struct ShardCacheInner {
    entries: HashMap<String, ShardResult>,
    /// Insertion order, for bounded FIFO eviction.
    order: VecDeque<String>,
    capacity: usize,
}

/// The coordinator-side shard result cache: a bounded FIFO keyed by
/// the shard spec's canonical key, exactly like the artifact cache
/// but one level down. A shard resubmitted after a worker-death retry
/// — or shared between jobs that cover the same grid cells — never
/// travels to a worker twice while resident. Hit/miss counters feed
/// `/metrics`.
#[derive(Debug)]
pub struct ShardCache {
    inner: Mutex<ShardCacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardCache {
    /// A cache retaining at most `capacity` shard results.
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(ShardCacheInner {
                entries: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to a worker so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached shard results currently resident.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> MutexGuard<'_, ShardCacheInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }
}

impl ShardResultCache for ShardCache {
    fn lookup(&self, shard_key: &str) -> Option<ShardResult> {
        let found = self.lock().entries.get(shard_key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    fn insert(&self, shard_key: &str, result: &ShardResult) {
        let mut inner = self.lock();
        if inner.entries.contains_key(shard_key) {
            return;
        }
        inner.entries.insert(shard_key.to_string(), result.clone());
        inner.order.push_back(shard_key.to_string());
        while inner.order.len() > inner.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.entries.remove(&old);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_enforces_capacity_and_drain() {
        let q = JobQueue::new(2, false);
        assert_eq!(q.try_push("a".into()), Ok(()));
        assert_eq!(q.try_push("b".into()), Ok(()));
        assert_eq!(q.try_push("c".into()), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
        q.drain();
        assert_eq!(q.try_push("d".into()), Err(PushError::Draining));
        assert_eq!(q.pop(), Some("a".to_string()));
        assert_eq!(q.pop(), Some("b".to_string()));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn paused_queue_admits_but_withholds() {
        let q = Arc::new(JobQueue::new(4, true));
        assert_eq!(q.try_push("a".into()), Ok(()));
        let popper = {
            let q = Arc::clone(&q);
            std::thread::spawn(move || q.pop())
        };
        // The popper stays parked while paused; resume releases it.
        std::thread::sleep(Duration::from_millis(20));
        assert!(!popper.is_finished());
        q.resume();
        assert_eq!(popper.join().expect("popper"), Some("a".to_string()));
    }

    #[test]
    fn store_coalesces_and_evicts_terminal_jobs() {
        let store = JobStore::new(1);
        let spec = JobSpec::Table2;
        assert!(store.admit("k1", &spec));
        assert!(!store.admit("k1", &spec), "duplicate admit coalesces");
        assert_eq!(store.state("k1").map(|s| s.label()), Some("queued"));
        store.mark_running("k1");
        store.finish("k1", JobState::Failed(ErrorBody::new(422, "x", "boom")));
        assert!(store.admit("k2", &spec));
        store.finish("k2", JobState::Failed(ErrorBody::new(422, "x", "boom")));
        // capacity 1: k1 (older terminal) evicted, k2 retained.
        assert!(store.state("k1").is_none());
        assert!(store.state("k2").is_some());
    }

    #[test]
    fn shard_cache_bounds_entries_and_counts_lookups() {
        let result = |shard: &str| ShardResult {
            shard: shard.to_string(),
            payload_json: format!("{{\"shard\":\"{shard}\"}}"),
            csv: String::new(),
            text: String::new(),
            wall_ms: 1.0,
            cache: None,
            row_cache: None,
        };
        let cache = ShardCache::new(2);
        assert!(cache.lookup("a").is_none());
        cache.insert("a", &result("a"));
        cache.insert("b", &result("b"));
        // Re-inserting the same key (the retry path) is idempotent.
        cache.insert("a", &result("a"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.lookup("a").map(|r| r.shard), Some("a".to_string()));
        // Capacity 2: inserting c evicts the oldest (a).
        cache.insert("c", &result("c"));
        assert!(cache.lookup("a").is_none());
        assert!(cache.lookup("c").is_some());
        assert_eq!((cache.hits(), cache.misses()), (2, 2));
    }

    #[test]
    fn wait_terminal_times_out_and_completes() {
        let store = Arc::new(JobStore::new(8));
        store.admit("k", &JobSpec::Table2);
        assert!(store
            .wait_terminal("k", Duration::from_millis(10))
            .is_none());
        let waiter = {
            let store = Arc::clone(&store);
            std::thread::spawn(move || store.wait_terminal("k", Duration::from_secs(5)))
        };
        store.finish("k", JobState::Failed(ErrorBody::new(422, "x", "boom")));
        let state = waiter.join().expect("waiter").expect("terminal");
        assert_eq!(state.label(), "failed");
    }
}
