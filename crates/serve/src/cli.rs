//! The `optpower` front-end with service verbs: `serve` boots the
//! job service, `submit` is the wire client, and every other
//! subcommand delegates to the workload CLI unchanged — one binary,
//! one command surface.

use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use optpower_explore::Workers;
use optpower_workload::WireFormat;

use crate::client;
use crate::server::{self, Config};

/// Entry point of the `optpower` binary: service verbs here,
/// everything else forwarded to the workload CLI.
pub fn main_with_args(args: Vec<String>) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("submit") => run_submit(&args[1..]),
        None | Some("help" | "--help" | "-h") => {
            let code = optpower_workload::cli::main_with_args(args);
            print!("{}", serve_usage());
            code
        }
        _ => optpower_workload::cli::main_with_args(args),
    }
}

fn serve_usage() -> String {
    "\nservice verbs (crates/serve):\n\
     \x20 optpower serve  [--addr HOST:PORT] [--queue N] [--executors N]\n\
     \x20                 [--workers N] [--cache N] [--timeout-ms N]\n\
     \x20                 [--out DIR] [--drain-on-stdin-eof]          boot the job service\n\
     \x20 optpower submit <spec.json|-> [--addr HOST:PORT]\n\
     \x20                 [--format text|json|csv] [--async]\n\
     \x20                 [--timeout-ms N]                            POST a spec, print the artifact\n"
        .to_string()
}

fn usage_error(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

fn run_serve(args: &[String]) -> ExitCode {
    let mut config = Config::default();
    let mut drain_on_stdin_eof = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut count = |flag: &str| -> Result<usize, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{flag} needs an unsigned integer"))
        };
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(addr) => config.addr = addr.clone(),
                None => return usage_error("--addr needs HOST:PORT"),
            },
            "--queue" => match count("--queue") {
                Ok(n) => config.queue_capacity = n,
                Err(e) => return usage_error(e),
            },
            "--executors" => match count("--executors") {
                Ok(n) => config.executors = n,
                Err(e) => return usage_error(e),
            },
            "--workers" => match count("--workers") {
                Ok(n) => config.workers = Workers::Fixed(n),
                Err(e) => return usage_error(e),
            },
            "--cache" => match count("--cache") {
                Ok(n) => config.cache_capacity = n,
                Err(e) => return usage_error(e),
            },
            "--store" => match count("--store") {
                Ok(n) => config.store_capacity = n,
                Err(e) => return usage_error(e),
            },
            "--timeout-ms" => match count("--timeout-ms") {
                Ok(n) => config.request_timeout_ms = n as u64,
                Err(e) => return usage_error(e),
            },
            "--retry-after" => match count("--retry-after") {
                Ok(n) => config.retry_after_s = n as u64,
                Err(e) => return usage_error(e),
            },
            "--max-body" => match count("--max-body") {
                Ok(n) => config.max_body_bytes = n,
                Err(e) => return usage_error(e),
            },
            "--out" => match it.next() {
                Some(dir) => config.artifact_dir = Some(PathBuf::from(dir)),
                None => return usage_error("--out needs a directory argument"),
            },
            "--drain-on-stdin-eof" => drain_on_stdin_eof = true,
            other => return usage_error(format!("unknown `optpower serve` argument {other:?}")),
        }
    }

    let handle = match server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: could not start the server: {e}");
            return ExitCode::from(4);
        }
    };
    println!("optpower serve listening on http://{}", handle.addr());
    let _ = io::stdout().flush();
    if drain_on_stdin_eof {
        // No signal handler (the workspace forbids `unsafe`), so a
        // supervisor that can't POST /v1/shutdown may simply close
        // our stdin to trigger the same graceful drain.
        let drainer = handle.drainer();
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = io::stdin().read_to_end(&mut sink);
            drainer.drain();
        });
    }
    handle.join();
    println!("optpower serve drained; exiting");
    ExitCode::SUCCESS
}

fn run_submit(args: &[String]) -> ExitCode {
    let mut source: Option<String> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut format = WireFormat::Json;
    let mut mode_async = false;
    let mut timeout = Duration::from_millis(120_000);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => return usage_error("--addr needs HOST:PORT"),
            },
            "--format" => match it.next().and_then(|n| WireFormat::from_name(n)) {
                Some(f) => format = f,
                None => return usage_error("--format needs text | json | csv"),
            },
            "--async" => mode_async = true,
            "--timeout-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => timeout = Duration::from_millis(ms),
                None => return usage_error("--timeout-ms needs an unsigned integer"),
            },
            other if source.is_none() && !other.starts_with("--") => {
                source = Some(other.to_string());
            }
            other => return usage_error(format!("unknown `optpower submit` argument {other:?}")),
        }
    }
    let Some(source) = source else {
        return usage_error("usage: optpower submit <spec.json|-> [flags]");
    };
    let body = if source == "-" {
        let mut buf = String::new();
        if let Err(e) = io::stdin().read_to_string(&mut buf) {
            eprintln!("error: reading stdin: {e}");
            return ExitCode::from(2);
        }
        buf
    } else {
        match std::fs::read_to_string(&source) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: reading {source}: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let accept = match format {
        WireFormat::Text => "text/plain",
        WireFormat::Json => "application/json",
        WireFormat::Csv => "text/csv",
    };
    let target = if mode_async {
        "/v1/jobs?mode=async"
    } else {
        "/v1/jobs"
    };
    let reply = match client::request(
        &addr,
        "POST",
        target,
        &[("Accept", accept)],
        body.as_bytes(),
        timeout,
    ) {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("error: request to {addr} failed: {e}");
            return ExitCode::from(4);
        }
    };
    if matches!(reply.status, 200 | 202) {
        if let Some(cache) = reply.header("x-optpower-cache") {
            eprintln!("cache: {cache}");
        }
        print!("{}", reply.body_text());
        if !reply.body.ends_with(b"\n") {
            println!();
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("error: HTTP {}: {}", reply.status, reply.body_text());
        // Mirror ErrorBody::exit_code: 422 job failures are 3, other
        // client-side statuses 2, host-side 4.
        ExitCode::from(match reply.status {
            422 => 3,
            400..=499 => 2,
            _ => 4,
        })
    }
}
