//! The `optpower` front-end with service verbs: `serve` boots the
//! job service, `submit` is the wire client, and every other
//! subcommand delegates to the workload CLI unchanged — one binary,
//! one command surface.

use std::io::{self, Read, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

use optpower_explore::Workers;
use optpower_workload::WireFormat;

use crate::client;
use crate::server::{self, Config};

/// Entry point of the `optpower` binary: service verbs here,
/// everything else forwarded to the workload CLI. `run` stays a
/// workload command unless `--hosts` asks for the cluster path.
pub fn main_with_args(args: Vec<String>) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("serve") => run_serve(&args[1..]),
        Some("submit") => run_submit(&args[1..]),
        Some("worker") => run_worker(&args[1..]),
        Some("run") if args.iter().any(|a| a == "--hosts") => run_dist(&args[1..]),
        None | Some("help" | "--help" | "-h") => {
            let code = optpower_workload::cli::main_with_args(args);
            print!("{}", serve_usage());
            code
        }
        _ => optpower_workload::cli::main_with_args(args),
    }
}

fn serve_usage() -> String {
    "\nservice verbs (crates/serve):\n\
     \x20 optpower serve  [--addr HOST:PORT] [--queue N] [--executors N]\n\
     \x20                 [--workers N|HOST:PORT,...] [--shards N] [--cache N]\n\
     \x20                 [--timeout-ms N]\n\
     \x20                 [--out DIR] [--drain-on-stdin-eof]          boot the job service\n\
     \x20 optpower submit <spec.json|-> [--addr HOST:PORT]\n\
     \x20                 [--format text|json|csv] [--async]\n\
     \x20                 [--timeout-ms N]                            POST a spec, print the artifact\n\
     \ndistributed execution (crates/dist):\n\
     \x20 optpower worker [--addr HOST:PORT] [--workers N] [--cache N]\n\
     \x20                                                             serve shards over TCP\n\
     \x20 optpower run <spec.json|-> --hosts HOST:PORT,... [--shards N]\n\
     \x20                 [--timeout-ms N] [--workers N] [--out DIR]\n\
     \x20                 [--json] [--csv]                            run one job across workers\n"
        .to_string()
}

fn usage_error(message: impl std::fmt::Display) -> ExitCode {
    eprintln!("error: {message}");
    ExitCode::from(2)
}

fn run_serve(args: &[String]) -> ExitCode {
    let mut config = Config::default();
    let mut drain_on_stdin_eof = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut count = |flag: &str| -> Result<usize, String> {
            it.next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| format!("{flag} needs an unsigned integer"))
        };
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(addr) => config.addr = addr.clone(),
                None => return usage_error("--addr needs HOST:PORT"),
            },
            "--queue" => match count("--queue") {
                Ok(n) => config.queue_capacity = n,
                Err(e) => return usage_error(e),
            },
            "--executors" => match count("--executors") {
                Ok(n) => config.executors = n,
                Err(e) => return usage_error(e),
            },
            // `--workers 4` is a thread count; `--workers h1:1,h2:1`
            // is a worker-host list for distributed execution. A bare
            // count parses as usize first, so the two spellings cannot
            // collide.
            "--workers" => match it.next() {
                Some(value) => match value.parse::<usize>() {
                    Ok(n) => config.workers = Workers::Fixed(n),
                    Err(_) => config.hosts = parse_host_list(value),
                },
                None => return usage_error("--workers needs a count or a HOST:PORT list"),
            },
            "--shards" => match count("--shards") {
                Ok(n) => config.shards = n,
                Err(e) => return usage_error(e),
            },
            "--cache" => match count("--cache") {
                Ok(n) => config.cache_capacity = n,
                Err(e) => return usage_error(e),
            },
            "--store" => match count("--store") {
                Ok(n) => config.store_capacity = n,
                Err(e) => return usage_error(e),
            },
            "--timeout-ms" => match count("--timeout-ms") {
                Ok(n) => config.request_timeout_ms = n as u64,
                Err(e) => return usage_error(e),
            },
            "--retry-after" => match count("--retry-after") {
                Ok(n) => config.retry_after_s = n as u64,
                Err(e) => return usage_error(e),
            },
            "--max-body" => match count("--max-body") {
                Ok(n) => config.max_body_bytes = n,
                Err(e) => return usage_error(e),
            },
            "--out" => match it.next() {
                Some(dir) => config.artifact_dir = Some(PathBuf::from(dir)),
                None => return usage_error("--out needs a directory argument"),
            },
            "--drain-on-stdin-eof" => drain_on_stdin_eof = true,
            other => return usage_error(format!("unknown `optpower serve` argument {other:?}")),
        }
    }

    let handle = match server::start(config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("error: could not start the server: {e}");
            return ExitCode::from(4);
        }
    };
    println!("optpower serve listening on http://{}", handle.addr());
    let _ = io::stdout().flush();
    if drain_on_stdin_eof {
        // No signal handler (the workspace forbids `unsafe`), so a
        // supervisor that can't POST /v1/shutdown may simply close
        // our stdin to trigger the same graceful drain.
        let drainer = handle.drainer();
        std::thread::spawn(move || {
            let mut sink = Vec::new();
            let _ = io::stdin().read_to_end(&mut sink);
            drainer.drain();
        });
    }
    handle.join();
    println!("optpower serve drained; exiting");
    ExitCode::SUCCESS
}

fn parse_host_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(|h| h.trim().to_string())
        .filter(|h| !h.is_empty())
        .collect()
}

/// `optpower worker [--addr HOST:PORT] [--workers N] [--cache N]`:
/// the blocking shard server behind a coordinator.
fn run_worker(args: &[String]) -> ExitCode {
    let mut addr = "127.0.0.1:0".to_string();
    let mut workers = Workers::Auto;
    let mut cache: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => return usage_error("--addr needs HOST:PORT"),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => workers = Workers::Fixed(n),
                None => return usage_error("--workers needs an unsigned integer"),
            },
            "--cache" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => cache = Some(n),
                None => return usage_error("--cache needs an unsigned integer"),
            },
            other => return usage_error(format!("unknown `optpower worker` argument {other:?}")),
        }
    }
    let mut runtime = optpower_workload::Runtime::new(workers);
    if let Some(capacity) = cache {
        // A cached runtime makes a shard resubmitted after a
        // coordinator-side retry an artifact-cache hit, and lets
        // overlapping shards share characterization rows.
        runtime = runtime.with_cache(capacity);
    }
    match optpower_dist::serve(addr.as_str(), runtime) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: could not start the worker: {e}");
            ExitCode::from(4)
        }
    }
}

/// `optpower run <spec> --hosts HOST:PORT,...`: the coordinator path
/// of the ordinary run verb. Output and exit codes match the local
/// `optpower run` byte for byte — distribution only shows in
/// `meta.dist`.
fn run_dist(args: &[String]) -> ExitCode {
    let mut source: Option<String> = None;
    let mut hosts: Vec<String> = Vec::new();
    let mut shards: Option<usize> = None;
    let mut timeout_ms: Option<u64> = None;
    let mut workers = Workers::Auto;
    let mut out_dir: Option<PathBuf> = None;
    let mut format = WireFormat::Text;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--hosts" => match it.next() {
                Some(list) => hosts = parse_host_list(list),
                None => return usage_error("--hosts needs HOST:PORT,..."),
            },
            "--shards" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => shards = Some(n),
                None => return usage_error("--shards needs an unsigned integer"),
            },
            "--timeout-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(ms) => timeout_ms = Some(ms),
                None => return usage_error("--timeout-ms needs an unsigned integer"),
            },
            "--workers" => match it.next().and_then(|v| v.parse().ok()) {
                Some(n) => workers = Workers::Fixed(n),
                None => return usage_error("--workers needs an unsigned integer"),
            },
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => return usage_error("--out needs a directory argument"),
            },
            "--json" => format = WireFormat::Json,
            "--csv" => format = WireFormat::Csv,
            other if source.is_none() && !other.starts_with("--") => {
                source = Some(other.to_string());
            }
            other => {
                return usage_error(format!("unknown `optpower run --hosts` argument {other:?}"))
            }
        }
    }
    let Some(source) = source else {
        return usage_error("usage: optpower run <spec.json|-> --hosts HOST:PORT,... [flags]");
    };
    if hosts.is_empty() {
        return usage_error("--hosts needs at least one HOST:PORT");
    }
    let text = if source == "-" {
        let mut buf = String::new();
        if let Err(e) = io::stdin().read_to_string(&mut buf) {
            eprintln!("error: reading stdin: {e}");
            return ExitCode::from(2);
        }
        buf
    } else {
        match std::fs::read_to_string(&source) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: reading {source}: {e}");
                return ExitCode::from(2);
            }
        }
    };
    let spec = match optpower_workload::JobSpec::from_json(&text) {
        Ok(spec) => spec,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(optpower_workload::ErrorBody::of(&e).exit_code());
        }
    };
    let mut cluster = optpower_dist::Cluster::new(hosts).with_workers(workers);
    if let Some(n) = shards {
        cluster = cluster.with_shards(n);
    }
    if let Some(ms) = timeout_ms {
        cluster = cluster.with_timeout_ms(ms);
    }
    let run = match cluster.run(&spec) {
        Ok(run) => run,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(e.error_body().exit_code());
        }
    };
    match format {
        WireFormat::Text => println!("{}", run.text),
        WireFormat::Json => println!("{}", run.json),
        WireFormat::Csv => print!("{}", run.csv),
    }
    if let Some(dir) = out_dir {
        let written = match &run.artifact {
            Some(artifact) => optpower_workload::cli::write_artifact_files(artifact, &dir),
            // Rendered-level merges still land the standard triple,
            // from the merged strings.
            None => write_rendered_files(&run, spec.kind(), &dir),
        };
        match written {
            Ok(n) => eprintln!("wrote {} artifact files to {}", n, dir.display()),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(4);
            }
        }
    }
    ExitCode::SUCCESS
}

fn write_rendered_files(
    run: &optpower_dist::DistRun,
    kind: &str,
    dir: &std::path::Path,
) -> Result<usize, optpower_workload::WorkloadError> {
    use optpower_workload::WorkloadError;
    std::fs::create_dir_all(dir).map_err(|e| WorkloadError::io(dir.display().to_string(), e))?;
    let mut written = 0usize;
    for (ext, contents) in [("json", &run.json), ("csv", &run.csv), ("txt", &run.text)] {
        let path = dir.join(format!("{kind}.{ext}"));
        std::fs::write(&path, contents)
            .map_err(|e| WorkloadError::io(path.display().to_string(), e))?;
        written += 1;
    }
    Ok(written)
}

fn run_submit(args: &[String]) -> ExitCode {
    let mut source: Option<String> = None;
    let mut addr = "127.0.0.1:7878".to_string();
    let mut format = WireFormat::Json;
    let mut mode_async = false;
    let mut timeout = Duration::from_millis(120_000);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => match it.next() {
                Some(a) => addr = a.clone(),
                None => return usage_error("--addr needs HOST:PORT"),
            },
            "--format" => match it.next().and_then(|n| WireFormat::from_name(n)) {
                Some(f) => format = f,
                None => return usage_error("--format needs text | json | csv"),
            },
            "--async" => mode_async = true,
            "--timeout-ms" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(ms) => timeout = Duration::from_millis(ms),
                None => return usage_error("--timeout-ms needs an unsigned integer"),
            },
            other if source.is_none() && !other.starts_with("--") => {
                source = Some(other.to_string());
            }
            other => return usage_error(format!("unknown `optpower submit` argument {other:?}")),
        }
    }
    let Some(source) = source else {
        return usage_error("usage: optpower submit <spec.json|-> [flags]");
    };
    let body = if source == "-" {
        let mut buf = String::new();
        if let Err(e) = io::stdin().read_to_string(&mut buf) {
            eprintln!("error: reading stdin: {e}");
            return ExitCode::from(2);
        }
        buf
    } else {
        match std::fs::read_to_string(&source) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("error: reading {source}: {e}");
                return ExitCode::from(2);
            }
        }
    };

    let accept = match format {
        WireFormat::Text => "text/plain",
        WireFormat::Json => "application/json",
        WireFormat::Csv => "text/csv",
    };
    let target = if mode_async {
        "/v1/jobs?mode=async"
    } else {
        "/v1/jobs"
    };
    let reply = match client::request(
        &addr,
        "POST",
        target,
        &[("Accept", accept)],
        body.as_bytes(),
        timeout,
    ) {
        Ok(reply) => reply,
        Err(e) => {
            eprintln!("error: request to {addr} failed: {e}");
            return ExitCode::from(4);
        }
    };
    if matches!(reply.status, 200 | 202) {
        if let Some(cache) = reply.header("x-optpower-cache") {
            eprintln!("cache: {cache}");
        }
        print!("{}", reply.body_text());
        if !reply.body.ends_with(b"\n") {
            println!();
        }
        ExitCode::SUCCESS
    } else {
        eprintln!("error: HTTP {}: {}", reply.status, reply.body_text());
        // Mirror ErrorBody::exit_code: 422 job failures are 3, other
        // client-side statuses 2, host-side 4.
        ExitCode::from(match reply.status {
            422 => 3,
            400..=499 => 2,
            _ => 4,
        })
    }
}
