#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod client;
pub mod http;
pub mod metrics;
pub mod queue;
pub mod server;

pub use client::{request, HttpReply};
pub use metrics::{Metrics, METRICS_SCHEMA};
pub use queue::{JobQueue, JobState, JobStore, PushError, ShardCache};
pub use server::{start, Config, Drainer, ServerHandle};
