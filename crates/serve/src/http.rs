//! A deliberately small HTTP/1.1 layer over `std::net`: enough to
//! frame the v1 wire API (request line + headers + `Content-Length`
//! body in, status + headers + body out) and nothing more. Every
//! connection is `Connection: close` — one request, one response, one
//! TCP stream — which keeps the server loop free of keep-alive
//! bookkeeping and makes per-request timeouts trivial (the socket
//! deadline *is* the request deadline).

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers). Requests
/// with longer heads are rejected before any allocation proportional
/// to attacker input.
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct HttpRequest {
    /// The method verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The path component of the target, percent-decoding *not*
    /// applied (v1 paths and keys are plain ASCII).
    pub path: String,
    /// The query component, split on `&` into `key=value` pairs.
    pub query: Vec<(String, String)>,
    /// Header `(name, value)` pairs; names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The body (empty unless `Content-Length` said otherwise).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The first value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be framed.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed request line, header, or length field.
    Malformed(String),
    /// The body exceeded the server's configured limit.
    BodyTooLarge {
        /// The declared `Content-Length`.
        declared: usize,
        /// The server's limit.
        limit: usize,
    },
    /// The socket failed or timed out mid-request.
    Io(io::Error),
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// Reads one request from the stream. `max_body` bounds the accepted
/// `Content-Length`; the caller is expected to have set a read
/// timeout on the stream already.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, HttpError> {
    let head = read_head(stream)?;
    let (head_str, leftover) = head;
    let mut lines = head_str.split("\r\n");
    let request_line = lines
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request".to_string()))?;
    let mut parts = request_line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(|| HttpError::Malformed("missing method".to_string()))?
        .to_string();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".to_string()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported protocol {version:?}"
        )));
    }
    let (path, query) = split_target(target);

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("malformed header line {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    if headers
        .iter()
        .any(|(n, v)| n == "transfer-encoding" && !v.eq_ignore_ascii_case("identity"))
    {
        return Err(HttpError::Malformed(
            "transfer-encoding is not supported; send Content-Length".to_string(),
        ));
    }

    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length {v:?}")))?,
        None => 0,
    };
    if content_length > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: content_length,
            limit: max_body,
        });
    }
    let mut body = leftover;
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the declared body arrived".to_string(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);

    Ok(HttpRequest {
        method,
        path,
        query,
        headers,
        body,
    })
}

/// Reads up to the `\r\n\r\n` head terminator, returning the head as
/// text plus any body bytes that arrived in the same reads.
fn read_head(stream: &mut TcpStream) -> Result<(String, Vec<u8>), HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    loop {
        if let Some(end) = find_head_end(&buf) {
            let head = String::from_utf8(buf[..end].to_vec())
                .map_err(|_| HttpError::Malformed("request head is not UTF-8".to_string()))?;
            return Ok((head, buf[end + 4..].to_vec()));
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::Malformed(format!(
                "request head exceeds {MAX_HEAD_BYTES} bytes"
            )));
        }
        let mut chunk = [0u8; 1024];
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(HttpError::Malformed(
                "connection closed before the request head completed".to_string(),
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn split_target(target: &str) -> (String, Vec<(String, String)>) {
    match target.split_once('?') {
        None => (target.to_string(), Vec::new()),
        Some((path, query)) => {
            let params = query
                .split('&')
                .filter(|p| !p.is_empty())
                .map(|p| match p.split_once('=') {
                    Some((k, v)) => (k.to_string(), v.to_string()),
                    None => (p.to_string(), String::new()),
                })
                .collect();
            (path.to_string(), params)
        }
    }
}

/// One response, written as `HTTP/1.1` with `Connection: close` and
/// an exact `Content-Length`.
#[derive(Debug)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the framing set.
    pub headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// A bodyless response with a status.
    pub fn new(status: u16) -> Self {
        Self {
            status,
            headers: Vec::new(),
            body: Vec::new(),
        }
    }

    /// Adds a header.
    pub fn header(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        self.headers.push((name.into(), value.into()));
        self
    }

    /// Sets the body and its content type.
    pub fn body(mut self, content_type: &str, body: impl Into<Vec<u8>>) -> Self {
        self.headers
            .push(("Content-Type".to_string(), content_type.to_string()));
        self.body = body.into();
        self
    }

    /// Writes the response to the stream.
    pub fn write_to(&self, stream: &mut TcpStream) -> io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {} {}\r\n",
            self.status,
            optpower_workload::reason_phrase(self.status)
        );
        for (name, value) in &self.headers {
            head.push_str(&format!("{name}: {value}\r\n"));
        }
        head.push_str(&format!(
            "Content-Length: {}\r\nConnection: close\r\n\r\n",
            self.body.len()
        ));
        stream.write_all(head.as_bytes())?;
        stream.write_all(&self.body)?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn targets_split_into_path_and_query() {
        let (path, query) = split_target("/v1/jobs?mode=async&x");
        assert_eq!(path, "/v1/jobs");
        assert_eq!(
            query,
            vec![
                ("mode".to_string(), "async".to_string()),
                ("x".to_string(), String::new()),
            ]
        );
        assert_eq!(split_target("/healthz"), ("/healthz".to_string(), vec![]));
    }

    #[test]
    fn head_terminator_is_found_mid_buffer() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some(14));
        assert_eq!(find_head_end(b"partial\r\n"), None);
    }
}
