//! The `optpower` binary: service verbs (`serve`, `submit`) plus the
//! full workload command surface by delegation.

fn main() -> std::process::ExitCode {
    optpower_serve::cli::main_with_args(std::env::args().skip(1).collect())
}
