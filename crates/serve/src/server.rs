//! The job service itself: one accept loop, a bounded admission
//! queue, N executor threads around a shared cache-backed
//! [`Runtime`], and the v1 routing table.
//!
//! Threading model: the acceptor owns the (non-blocking) listener and
//! spawns one short-lived handler thread per connection; executors
//! block on the queue. Handlers never execute jobs — they admit,
//! wait, and frame — so a wedged job can only ever consume an
//! executor, and the per-request deadline (`request_timeout_ms`)
//! turns a too-slow synchronous wait into `504` without touching the
//! executor that is still computing (the artifact lands in the cache,
//! so a retry is a hit).
//!
//! Graceful shutdown is cooperative: `POST /v1/shutdown` (or
//! [`ServerHandle::drain`]) flips the queue to draining — admission
//! returns `503 draining`, executors finish what is queued, then
//! [`ServerHandle::join`] returns. There is no signal handler by
//! design: the workspace forbids `unsafe`, and a `SIGTERM` hook
//! cannot be installed without it, so process supervisors drive the
//! shutdown endpoint (or close stdin when the CLI runs with
//! `--drain-on-stdin-eof`).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use optpower_dist::Cluster;
use optpower_explore::Workers;
use optpower_workload::{status_json, ErrorBody, JobSpec, Json, Runtime, SubmitMode, WireFormat};

use crate::http::{read_request, HttpError, HttpRequest, HttpResponse};
use crate::metrics::Metrics;
use crate::queue::{JobQueue, JobState, JobStore, PushError, ShardCache};

/// How long a handler waits for the socket itself (reading the
/// request, writing the response). Deliberately short — bodies are
/// small; the long wait in a synchronous submit happens on the job
/// store condvar, not the socket.
const SOCKET_TIMEOUT: Duration = Duration::from_secs(10);

/// How long [`ServerHandle::join`] waits for in-flight handler
/// threads to finish writing after the executors exit.
const CONNECTION_GRACE: Duration = Duration::from_secs(5);

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct Config {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub addr: String,
    /// Jobs admitted but not yet running (backpressure bound).
    pub queue_capacity: usize,
    /// Executor threads pulling from the queue.
    pub executors: usize,
    /// Worker policy of the shared runtime pool.
    pub workers: Workers,
    /// Artifacts retained in the content-addressed cache.
    pub cache_capacity: usize,
    /// Terminal jobs retained for `GET /v1/jobs/<key>` pollers.
    pub store_capacity: usize,
    /// Deadline for a synchronous submission, in milliseconds; past
    /// it the request gets `504` (the job keeps running).
    pub request_timeout_ms: u64,
    /// The `Retry-After` value (seconds) sent with `429`.
    pub retry_after_s: u64,
    /// Largest accepted request body, in bytes.
    pub max_body_bytes: usize,
    /// Directory for side-effect artifacts (the export job); `None`
    /// keeps the runtime default.
    pub artifact_dir: Option<PathBuf>,
    /// Worker `host:port` addresses for distributed execution; empty
    /// means every job runs locally on the shared runtime.
    pub hosts: Vec<String>,
    /// Target shard count for distributed jobs; 0 means one shard per
    /// worker host.
    pub shards: usize,
    /// Start with executors paused (test hook: admission works, the
    /// queue fills deterministically, [`ServerHandle::resume`]
    /// releases the executors).
    pub start_paused: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            queue_capacity: 32,
            executors: 2,
            workers: Workers::Auto,
            cache_capacity: 64,
            store_capacity: 256,
            request_timeout_ms: 120_000,
            retry_after_s: 1,
            max_body_bytes: 1024 * 1024,
            artifact_dir: None,
            hosts: Vec::new(),
            shards: 0,
            start_paused: false,
        }
    }
}

struct Shared {
    runtime: Runtime,
    /// The coordinator, when `Config::hosts` named worker addresses.
    cluster: Option<Cluster>,
    queue: JobQueue,
    store: JobStore,
    metrics: Metrics,
    config: Config,
    stop_accepting: AtomicBool,
    active_connections: AtomicUsize,
}

impl Shared {
    fn state_label(&self) -> &'static str {
        if self.queue.is_draining() {
            "draining"
        } else {
            "running"
        }
    }
}

/// A running server: the bound address plus the thread handles.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    executors: Vec<JoinHandle<()>>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Releases paused executors (pairs with `Config::start_paused`).
    pub fn resume(&self) {
        self.shared.queue.resume();
    }

    /// Starts a graceful drain: admission refused, queued jobs finish.
    pub fn drain(&self) {
        self.shared.queue.drain();
    }

    /// Stops immediately: queued jobs are dropped unrun.
    pub fn abort(&self) {
        self.shared.queue.abort();
    }

    /// A cloneable drain trigger, for watcher threads (e.g. the CLI's
    /// stdin-EOF watcher) that outlive this handle's borrow.
    pub fn drainer(&self) -> Drainer {
        Drainer(Arc::clone(&self.shared))
    }

    /// Blocks until the server has shut down (a drain or abort must
    /// be triggered — by this handle or by `POST /v1/shutdown` — or
    /// this waits forever, which is the CLI's foreground behaviour).
    pub fn join(mut self) {
        for handle in self.executors.drain(..) {
            let _ = handle.join();
        }
        // Give in-flight handler threads a bounded window to finish
        // writing (they are detached; only the counter tracks them).
        let deadline = Instant::now() + CONNECTION_GRACE;
        while self.shared.active_connections.load(Ordering::Acquire) > 0
            && Instant::now() < deadline
        {
            thread::sleep(Duration::from_millis(5));
        }
        self.shared.stop_accepting.store(true, Ordering::Release);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
    }
}

/// A detached drain trigger (see [`ServerHandle::drainer`]).
pub struct Drainer(Arc<Shared>);

impl Drainer {
    /// Starts the graceful drain, exactly like [`ServerHandle::drain`].
    pub fn drain(&self) {
        self.0.queue.drain();
    }
}

/// Binds the listener and spawns the service threads.
///
/// # Errors
///
/// [`io::Error`] when the address cannot be bound.
pub fn start(config: Config) -> io::Result<ServerHandle> {
    let mut runtime = Runtime::new(config.workers).with_cache(config.cache_capacity);
    if let Some(dir) = &config.artifact_dir {
        runtime = runtime.with_artifact_dir(dir.clone());
    }
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let cluster = if config.hosts.is_empty() {
        None
    } else {
        // Shard results are one grid cell each, so the shard cache can
        // afford to be an order of magnitude deeper than the artifact
        // cache without changing the memory story.
        let shard_cache = Arc::new(ShardCache::new(config.cache_capacity.saturating_mul(8)));
        let mut cluster = Cluster::new(config.hosts.clone())
            .with_workers(config.workers)
            .with_cache(shard_cache);
        if config.shards > 0 {
            cluster = cluster.with_shards(config.shards);
        }
        Some(cluster)
    };

    let shared = Arc::new(Shared {
        runtime,
        cluster,
        queue: JobQueue::new(config.queue_capacity, config.start_paused),
        store: JobStore::new(config.store_capacity),
        metrics: Metrics::default(),
        config,
        stop_accepting: AtomicBool::new(false),
        active_connections: AtomicUsize::new(0),
    });

    let executors = (0..shared.config.executors.max(1))
        .map(|_| {
            let shared = Arc::clone(&shared);
            thread::spawn(move || {
                while let Some(key) = shared.queue.pop() {
                    execute_one(&shared, &key);
                }
            })
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        thread::spawn(move || accept_loop(&listener, &shared))
    };

    Ok(ServerHandle {
        addr,
        shared,
        executors,
        acceptor: Some(acceptor),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>) {
    while !shared.stop_accepting.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.active_connections.fetch_add(1, Ordering::AcqRel);
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    handle_connection(&shared, stream);
                    shared.active_connections.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(10));
            }
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Runs one admitted job on the shared runtime and records the
/// outcome for waiters, pollers and metrics.
fn execute_one(shared: &Shared, key: &str) {
    let Some(spec) = shared.store.spec(key) else {
        return;
    };
    shared.store.mark_running(key);
    // Grid-shaped kinds go through the cluster when one is configured;
    // everything else (and everything when `--workers` named no hosts)
    // runs locally on the shared runtime.
    if let Some(cluster) = &shared.cluster {
        if matches!(
            spec,
            JobSpec::AbInitio(_) | JobSpec::GlitchSweep(_) | JobSpec::Table1Sweep { .. }
        ) {
            execute_distributed(shared, cluster, key, &spec);
            return;
        }
    }
    match shared.runtime.run(&spec) {
        Ok(artifact) => {
            shared
                .metrics
                .record_wall(artifact.kind(), artifact.meta.wall_ms);
            if let Some(rc) = artifact.meta.row_cache {
                shared
                    .metrics
                    .row_cache_hits
                    .fetch_add(rc.hits, std::sync::atomic::Ordering::Relaxed);
                shared
                    .metrics
                    .row_cache_misses
                    .fetch_add(rc.misses, std::sync::atomic::Ordering::Relaxed);
            }
            shared.store.finish(key, JobState::Done(Arc::new(artifact)));
        }
        Err(e) => {
            Metrics::bump(&shared.metrics.failed);
            shared
                .store
                .finish(key, JobState::Failed(ErrorBody::of(&e)));
        }
    }
}

/// Runs one job across the worker cluster and folds the scheduling
/// stats — per-host shard counts, retries, shard/artifact/row cache
/// counters from every worker — into the service metrics.
fn execute_distributed(shared: &Shared, cluster: &Cluster, key: &str, spec: &JobSpec) {
    use std::sync::atomic::Ordering::Relaxed;
    match cluster.run(spec) {
        Ok(run) => {
            let stats = &run.stats;
            shared
                .metrics
                .dist_retries
                .fetch_add(stats.retries, Relaxed);
            shared
                .metrics
                .shard_cache_hits
                .fetch_add(stats.shard_cache_hits, Relaxed);
            shared
                .metrics
                .shard_cache_misses
                .fetch_add(stats.shard_cache_misses, Relaxed);
            shared.metrics.record_dist_hosts(&stats.per_host);
            shared
                .metrics
                .cache_hits
                .fetch_add(stats.cache_hits, Relaxed);
            shared
                .metrics
                .cache_misses
                .fetch_add(stats.cache_misses, Relaxed);
            if let Some(rc) = stats.row_cache {
                shared.metrics.row_cache_hits.fetch_add(rc.hits, Relaxed);
                shared
                    .metrics
                    .row_cache_misses
                    .fetch_add(rc.misses, Relaxed);
            }
            let artifact = run.artifact.expect("distributed kinds merge typed");
            shared
                .metrics
                .record_wall(artifact.kind(), artifact.meta.wall_ms);
            shared.store.finish(key, JobState::Done(Arc::new(artifact)));
        }
        Err(e) => {
            Metrics::bump(&shared.metrics.failed);
            shared.store.finish(key, JobState::Failed(e.error_body()));
        }
    }
}

fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(SOCKET_TIMEOUT));
    let _ = stream.set_write_timeout(Some(SOCKET_TIMEOUT));
    let response = match read_request(&mut stream, shared.config.max_body_bytes) {
        Ok(request) => route(shared, &request),
        Err(HttpError::BodyTooLarge { declared, limit }) => {
            Metrics::bump(&shared.metrics.rejected_other);
            error_response(&ErrorBody::new(
                413,
                "payload_too_large",
                format!("body of {declared} bytes exceeds the {limit}-byte limit"),
            ))
        }
        Err(HttpError::Malformed(why)) => error_response(&ErrorBody::new(400, "bad_request", why)),
        // The socket died or timed out before a request arrived;
        // nobody is listening for a response.
        Err(HttpError::Io(_)) => return,
    };
    let _ = response.write_to(&mut stream);
}

/// The v1 routing table.
fn route(shared: &Shared, request: &HttpRequest) -> HttpResponse {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/jobs") => submit(shared, request),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            poll(shared, &path["/v1/jobs/".len()..], request)
        }
        ("GET", "/metrics") => HttpResponse::new(200).body(
            "application/json",
            shared
                .metrics
                .render(shared.queue.depth(), shared.state_label()),
        ),
        ("GET", "/healthz") => HttpResponse::new(200).body(
            "application/json",
            Json::obj([
                ("ok", Json::Bool(true)),
                ("state", Json::str(shared.state_label())),
            ])
            .to_string(),
        ),
        ("POST", "/v1/shutdown") => {
            shared.queue.drain();
            HttpResponse::new(200).body(
                "application/json",
                Json::obj([("ok", Json::Bool(true)), ("state", Json::str("draining"))]).to_string(),
            )
        }
        (_, "/v1/jobs") => method_not_allowed("POST"),
        (_, path) if path.starts_with("/v1/jobs/") => method_not_allowed("GET"),
        (_, "/metrics") | (_, "/healthz") => method_not_allowed("GET"),
        (_, "/v1/shutdown") => method_not_allowed("POST"),
        _ => error_response(&ErrorBody::new(
            404,
            "unknown_path",
            format!("no such endpoint {:?}", request.path),
        )),
    }
}

fn method_not_allowed(allow: &str) -> HttpResponse {
    error_response(&ErrorBody::new(
        405,
        "method_not_allowed",
        format!("allowed: {allow}"),
    ))
    .header("Allow", allow)
}

/// `POST /v1/jobs`: negotiate, parse, consult the cache, admit, and
/// either wait (sync) or hand back the key (async).
fn submit(shared: &Shared, request: &HttpRequest) -> HttpResponse {
    if shared.queue.is_draining() {
        Metrics::bump(&shared.metrics.rejected_other);
        return error_response(&ErrorBody::new(
            503,
            "draining",
            "server is draining and refuses new work",
        ));
    }
    let Some(format) = WireFormat::from_accept(request.header("accept").unwrap_or("")) else {
        Metrics::bump(&shared.metrics.rejected_other);
        return error_response(&ErrorBody::new(
            406,
            "not_acceptable",
            "no supported media type in Accept (application/json, text/csv, text/plain)",
        ));
    };
    let mode = match request.query_param("mode") {
        None | Some("sync") => SubmitMode::Sync,
        Some("async") => SubmitMode::Async,
        Some(other) => {
            Metrics::bump(&shared.metrics.rejected_other);
            return error_response(&ErrorBody::new(
                400,
                "invalid_spec",
                format!("unknown mode {other:?} (sync | async)"),
            ));
        }
    };
    let body = match std::str::from_utf8(&request.body) {
        Ok(text) => text,
        Err(_) => {
            Metrics::bump(&shared.metrics.rejected_other);
            return error_response(&ErrorBody::new(
                400,
                "invalid_spec",
                "request body is not UTF-8",
            ));
        }
    };
    let spec = match JobSpec::from_json(body) {
        Ok(spec) => spec,
        Err(e) => {
            Metrics::bump(&shared.metrics.rejected_other);
            return error_response(&ErrorBody::of(&e));
        }
    };
    let key = spec.canonical_key();

    // Cache hits bypass the queue entirely: no slot, no executor.
    if let Some(artifact) = shared.runtime.cache_lookup(&spec) {
        Metrics::bump(&shared.metrics.accepted);
        Metrics::bump(&shared.metrics.served);
        Metrics::bump(&shared.metrics.cache_hits);
        return artifact_response(format, &artifact, &key, "hit");
    }
    Metrics::bump(&shared.metrics.cache_misses);

    if shared.store.admit(&key, &spec) {
        match shared.queue.try_push(key.clone()) {
            Ok(()) => Metrics::bump(&shared.metrics.accepted),
            Err(PushError::Full) => {
                shared.store.remove_if_queued(&key);
                Metrics::bump(&shared.metrics.rejected_queue_full);
                return error_response(&ErrorBody::new(
                    429,
                    "queue_full",
                    format!(
                        "admission queue is full ({} jobs); retry later",
                        shared.config.queue_capacity
                    ),
                ))
                .header("Retry-After", shared.config.retry_after_s.to_string());
            }
            Err(PushError::Draining) => {
                shared.store.remove_if_queued(&key);
                Metrics::bump(&shared.metrics.rejected_other);
                return error_response(&ErrorBody::new(
                    503,
                    "draining",
                    "server is draining and refuses new work",
                ));
            }
        }
    }
    // (an admit() of false coalesced onto an identical in-flight or
    // finished job — no new queue slot, same key to wait on)

    match mode {
        SubmitMode::Async => HttpResponse::new(202)
            .header("X-Optpower-Key", key.clone())
            .body("application/json", status_json(&key, "queued")),
        SubmitMode::Sync => {
            let timeout = Duration::from_millis(shared.config.request_timeout_ms);
            match shared.store.wait_terminal(&key, timeout) {
                Some(JobState::Done(artifact)) => {
                    Metrics::bump(&shared.metrics.served);
                    artifact_response(format, &artifact, &key, "miss")
                }
                Some(JobState::Failed(body)) => error_response(&body),
                _ => {
                    Metrics::bump(&shared.metrics.timeouts);
                    error_response(&ErrorBody::new(
                        504,
                        "timeout",
                        format!(
                            "job {key} did not finish within {} ms; it keeps running — \
                             resubmit or poll /v1/jobs/{key}",
                            shared.config.request_timeout_ms
                        ),
                    ))
                }
            }
        }
    }
}

/// `GET /v1/jobs/<key>`: the status document while in flight, the
/// rendered artifact once done, the mapped error once failed.
fn poll(shared: &Shared, key: &str, request: &HttpRequest) -> HttpResponse {
    let Some(format) = WireFormat::from_accept(request.header("accept").unwrap_or("")) else {
        return error_response(&ErrorBody::new(
            406,
            "not_acceptable",
            "no supported media type in Accept (application/json, text/csv, text/plain)",
        ));
    };
    match shared.store.state(key) {
        None => error_response(&ErrorBody::new(
            404,
            "unknown_job",
            format!("no job {key:?} is tracked (never submitted, or evicted)"),
        )),
        Some(JobState::Done(artifact)) => {
            Metrics::bump(&shared.metrics.served);
            let label = artifact.meta.cache.map(|c| c.label()).unwrap_or("miss");
            artifact_response(format, &artifact, key, label)
        }
        Some(JobState::Failed(body)) => error_response(&body),
        Some(state) => {
            HttpResponse::new(200).body("application/json", status_json(key, state.label()))
        }
    }
}

fn artifact_response(
    format: WireFormat,
    artifact: &optpower_workload::Artifact,
    key: &str,
    cache: &str,
) -> HttpResponse {
    HttpResponse::new(200)
        .header("X-Optpower-Key", key)
        .header("X-Optpower-Cache", cache)
        .body(format.content_type(), format.render(artifact))
}

fn error_response(body: &ErrorBody) -> HttpResponse {
    HttpResponse::new(body.status).body("application/json", body.to_json())
}
