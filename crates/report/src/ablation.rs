//! Ablation studies for the design choices called out in DESIGN.md §5:
//! linearisation fit range, optimiser strategy, and the glitch model.

use optpower::calibrate::{build_model, from_breakdown};
use optpower::reference::{PAPER_FREQUENCY, TABLE1};
use optpower::{ArchParams, ModelError, OptimizerConfig, PowerModel};
use optpower_tech::{Flavor, Linearization, Technology};
use optpower_units::{Farads, SquareMicrons, Volts, Watts};

use crate::render::{fnum, Table};

/// A/B result of fitting Eq. 7 over a given range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitRangeResult {
    /// Fit range lower end \[V\].
    pub lo: f64,
    /// Fit range upper end \[V\].
    pub hi: f64,
    /// Fitted slope `A`.
    pub a: f64,
    /// Fitted intercept `B`.
    pub b: f64,
    /// Worst-case fit residual.
    pub max_error: f64,
}

/// Sensitivity of `(A, B)` to the fitting range (the paper fixes
/// 0.3–1.0 V; this quantifies how much that choice matters).
///
/// # Errors
///
/// Propagates numeric errors from the fits (unreachable for valid α).
pub fn fit_range_sensitivity(alpha: f64) -> Result<Vec<FitRangeResult>, ModelError> {
    let ranges = [(0.2, 1.0), (0.3, 1.0), (0.3, 0.9), (0.4, 1.1), (0.25, 1.2)];
    ranges
        .iter()
        .map(|&(lo, hi)| {
            let fit = Linearization::fit(alpha, Volts::new(lo), Volts::new(hi))?;
            Ok(FitRangeResult {
                lo,
                hi,
                a: fit.a(),
                b: fit.b(),
                max_error: fit.max_error(),
            })
        })
        .collect()
}

/// Renders the fit-range ablation.
pub fn render_fit_ranges(alpha: f64, rows: &[FitRangeResult]) -> String {
    let mut t = Table::new(&["range [V]", "A", "B", "max err"]);
    for r in rows {
        t.row(&[
            format!("{:.2}-{:.2}", r.lo, r.hi),
            fnum(r.a, 4),
            fnum(r.b, 4),
            fnum(r.max_error, 5),
        ]);
    }
    format!("Ablation - Eq.7 fit range sensitivity (alpha = {alpha})\n{t}")
}

/// A/B result of one optimiser configuration against the golden
/// reference.
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizerAblationRow {
    /// Description of the strategy.
    pub strategy: String,
    /// Total power found \[µW\].
    pub ptot_uw: f64,
    /// Excess over the golden-section reference \[%\].
    pub excess_pct: f64,
}

/// Compares the paper-style 2-D grid sweep at several resolutions
/// against the golden-section reference on the calibrated RCA model.
///
/// The returned excesses quantify the rounding inherent in the paper's
/// "all reasonable Vdd/Vth couples" procedure.
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or solving.
pub fn optimizer_ablation() -> Result<Vec<OptimizerAblationRow>, ModelError> {
    let model = calibrated_rca()?;
    let reference = model.optimize()?.ptot().value();
    let mut rows = vec![OptimizerAblationRow {
        strategy: "golden-section (reference)".to_string(),
        ptot_uw: reference * 1e6,
        excess_pct: 0.0,
    }];
    for n in [11usize, 31, 101, 301] {
        let grid = model.optimize_grid2d(n, n, OptimizerConfig::default())?;
        let p = grid.ptot().value();
        rows.push(OptimizerAblationRow {
            strategy: format!("2-D grid {n}x{n}"),
            ptot_uw: p * 1e6,
            excess_pct: (p - reference) / reference * 100.0,
        });
    }
    Ok(rows)
}

/// Renders the optimiser ablation.
pub fn render_optimizer(rows: &[OptimizerAblationRow]) -> String {
    let mut t = Table::new(&["strategy", "Ptot [uW]", "excess %"]);
    for r in rows {
        t.row(&[
            r.strategy.clone(),
            fnum(r.ptot_uw, 3),
            fnum(r.excess_pct, 3),
        ]);
    }
    format!("Ablation - optimiser strategy (calibrated RCA)\n{t}")
}

/// A/B result of the glitch model on one architecture's optimal power.
#[derive(Debug, Clone, PartialEq)]
pub struct GlitchAblationRow {
    /// Architecture name.
    pub name: String,
    /// Activity with glitches (timed engine).
    pub activity_timed: f64,
    /// Activity without glitches (zero-delay engine).
    pub activity_zero_delay: f64,
    /// Optimal Ptot using the glitchy activity, in µW.
    pub ptot_timed_uw: f64,
    /// Optimal Ptot using the glitch-free activity, in µW.
    pub ptot_zero_delay_uw: f64,
}

/// Quantifies how much of each pipelined RCA's optimal power is due to
/// glitches: the same model solved with timed vs zero-delay activity.
///
/// This isolates the paper's diagonal-pipeline penalty: with glitches
/// removed, the diagonal variant's shorter LD would win; with them, the
/// horizontal variant does.
///
/// # Errors
///
/// Propagates [`ModelError`] from model building or solving.
pub fn glitch_ablation(items: u64, seed: u64) -> Result<Vec<GlitchAblationRow>, ModelError> {
    use optpower_mult::Architecture;
    use optpower_netlist::{Library, NetlistStats};
    use optpower_sim::{measure_activity, Engine};
    use optpower_sta::TimingAnalysis;
    use optpower_units::Hertz;

    let lib = Library::cmos13();
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    let mut rows = Vec::new();
    for arch in [
        Architecture::RcaHorPipe2,
        Architecture::RcaDiagPipe2,
        Architecture::RcaHorPipe4,
        Architecture::RcaDiagPipe4,
    ] {
        let design = arch.generate(16).expect("valid generator");
        let stats = NetlistStats::measure(&design.netlist, &lib);
        let sta = TimingAnalysis::analyze(&design.netlist, &lib);
        let ld = design.effective_logical_depth(sta.logical_depth());
        let timed = measure_activity(&design.netlist, &lib, Engine::Timed, items, 1, 4, seed)
            .expect("valid library and acyclic netlist");
        let zd = measure_activity(&design.netlist, &lib, Engine::ZeroDelay, items, 1, 4, seed)
            .expect("zero-delay measurement cannot fail");
        let solve = |activity: f64| -> Result<f64, ModelError> {
            let params = ArchParams::builder(arch.paper_name())
                .cells(stats.logic_cells as u32)
                .activity(activity)
                .logical_depth(ld)
                .cap_per_cell(Farads::new(stats.avg_switched_cap_f))
                .build()?;
            let model = PowerModel::from_technology(tech, params, Hertz::new(31.25e6))?;
            Ok(model.optimize()?.ptot().value() * 1e6)
        };
        rows.push(GlitchAblationRow {
            name: arch.paper_name().to_string(),
            activity_timed: timed.activity,
            activity_zero_delay: zd.activity,
            ptot_timed_uw: solve(timed.activity)?,
            ptot_zero_delay_uw: solve(zd.activity)?,
        });
    }
    Ok(rows)
}

/// Renders the glitch ablation.
pub fn render_glitch(rows: &[GlitchAblationRow]) -> String {
    let mut t = Table::new(&[
        "arch",
        "a(timed)",
        "a(0-delay)",
        "Ptot glitchy",
        "Ptot glitch-free",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            fnum(r.activity_timed, 4),
            fnum(r.activity_zero_delay, 4),
            fnum(r.ptot_timed_uw, 2),
            fnum(r.ptot_zero_delay_uw, 2),
        ]);
    }
    format!("Ablation - glitch contribution to optimal power\n{t}")
}

fn calibrated_rca() -> Result<PowerModel, ModelError> {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    let rca = &TABLE1[0];
    let cal = from_breakdown(
        &tech,
        Volts::new(rca.vdd),
        Volts::new(rca.vth),
        Watts::new(rca.pdyn_uw * 1e-6),
        Watts::new(rca.pstat_uw * 1e-6),
        f64::from(rca.cells),
        rca.activity,
        PAPER_FREQUENCY,
    )?;
    let arch = ArchParams::builder(rca.name)
        .cells(rca.cells)
        .activity(rca.activity)
        .logical_depth(rca.ld_eff)
        .cap_per_cell(Farads::new(1e-15))
        .area(SquareMicrons::new(rca.area_um2))
        .build()?;
    build_model(tech, arch, PAPER_FREQUENCY, cal)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_range_paper_choice_reproduces_published_constants() {
        let rows = fit_range_sensitivity(1.86).unwrap();
        let paper = rows
            .iter()
            .find(|r| r.lo == 0.3 && r.hi == 1.0)
            .expect("paper range present");
        assert!((paper.a - 0.671).abs() < 0.005);
        assert!((paper.b - 0.347).abs() < 0.005);
    }

    #[test]
    fn fit_range_shifts_coefficients() {
        let rows = fit_range_sensitivity(1.86).unwrap();
        let a_values: Vec<f64> = rows.iter().map(|r| r.a).collect();
        let spread = a_values.iter().cloned().fold(f64::MIN, f64::max)
            - a_values.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.01, "fit range must matter: spread {spread}");
    }

    #[test]
    fn grid_error_shrinks_with_resolution() {
        let rows = optimizer_ablation().unwrap();
        assert_eq!(rows[0].excess_pct, 0.0);
        let coarse = rows[1].excess_pct;
        let fine = rows.last().unwrap().excess_pct;
        assert!(fine <= coarse, "fine {fine} vs coarse {coarse}");
        assert!(fine >= -1e-9, "grid can never beat the continuum");
        // At 301x301 the grid is within a fraction of a percent.
        assert!(fine < 0.5, "fine {fine}");
    }

    #[test]
    fn glitches_raise_optimal_power() {
        let rows = glitch_ablation(50, 3).unwrap();
        for r in &rows {
            assert!(r.activity_timed >= r.activity_zero_delay, "{}", r.name);
            assert!(r.ptot_timed_uw >= r.ptot_zero_delay_uw, "{}", r.name);
        }
        // Diagonal pays a larger glitch premium than horizontal.
        let prem = |name: &str| {
            let r = rows.iter().find(|r| r.name == name).expect("present");
            r.ptot_timed_uw / r.ptot_zero_delay_uw
        };
        assert!(prem("RCA diagpipe2") > prem("RCA hor.pipe2"));
    }

    #[test]
    fn renders() {
        let s = render_fit_ranges(1.86, &fit_range_sensitivity(1.86).unwrap());
        assert!(s.contains("0.30-1.00"));
        let s = render_optimizer(&optimizer_ablation().unwrap());
        assert!(s.contains("golden-section"));
    }
}
