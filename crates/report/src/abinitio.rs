//! The ab-initio reproduction (Table 1′): every architectural
//! parameter measured from our own netlists, simulator and STA — no
//! calibration against the paper's numbers at all.
//!
//! Characterization (netlist generation → STA `LD` → activity
//! measurement → optimisation) is independent per architecture, so
//! [`characterize_parallel`] shards the thirteen architectures across
//! the `optpower-explore` worker pool, and the glitch-free baseline
//! uses the 64-lane [`optpower_sim::BitParallelSim`] engine — 64×
//! the stimulus volume of a scalar zero-delay run at the same cost.

use optpower::{ArchParams, ModelError, PowerModel};
use optpower_explore::{par_map, Workers};
use optpower_mult::Architecture;
use optpower_netlist::{Library, NetlistStats};
use optpower_sim::{measure_activity, Engine};
use optpower_sta::TimingAnalysis;
use optpower_tech::{Flavor, Technology};
use optpower_units::{Farads, Hertz, SquareMicrons};

use crate::render::{fnum, Table};

/// One architecture's ab-initio measurement and optimisation result.
#[derive(Debug, Clone)]
pub struct AbInitioRow {
    /// The architecture.
    pub arch: Architecture,
    /// Measured cell count `N`.
    pub cells: usize,
    /// Measured area in µm².
    pub area_um2: f64,
    /// Measured activity (timed engine, glitches included).
    pub activity: f64,
    /// Measured glitch-free activity (bit-parallel engine: 64
    /// zero-delay stimulus lanes per item).
    pub activity_zero_delay: f64,
    /// Effective logical depth per throughput period.
    pub ld_eff: f64,
    /// Optimal supply voltage \[V\].
    pub vdd: f64,
    /// Optimal threshold voltage \[V\].
    pub vth: f64,
    /// Optimal total power, numerical \[µW\].
    pub ptot_uw: f64,
    /// Optimal total power by Eq. 13 \[µW\] (NaN when the closed form is
    /// undefined, e.g. `χA ≥ 1` for the sequential designs).
    pub eq13_uw: f64,
}

/// Runs the full ab-initio flow for all thirteen architectures:
/// generate → simulate (activity) → STA (LD) → library stats (N, C)
/// → optimise at the paper's 31.25 MHz on the chosen flavour.
///
/// `items` controls the random-stimulus volume (the paper used full
/// testbench traces; 200+ items give stable activities — the
/// glitch-free baseline additionally gets 64 stimulus lanes per item
/// from the bit-parallel engine). Architectures are characterized in
/// parallel on every available core; see [`characterize_parallel`] for
/// the worker-count-independence contract.
///
/// # Errors
///
/// Propagates [`ModelError`] from model building or optimisation.
///
/// # Panics
///
/// Panics if a generator fails structurally (impossible for width 16).
pub fn ab_initio_table(
    flavor: Flavor,
    items: u64,
    seed: u64,
) -> Result<Vec<AbInitioRow>, ModelError> {
    characterize_all_parallel(flavor, items, seed, Workers::Auto)
}

/// Ab-initio characterization of one architecture: generate → library
/// stats (N, C) → STA (LD) → activity (timed + bit-parallel
/// glitch-free) → optimise at `freq` on `tech`.
///
/// # Errors
///
/// Propagates [`ModelError`] from model building or optimisation.
///
/// # Panics
///
/// Panics if the generator fails structurally (impossible for width
/// 16).
pub fn characterize_architecture(
    arch: Architecture,
    lib: &Library,
    tech: Technology,
    freq: Hertz,
    items: u64,
    seed: u64,
) -> Result<AbInitioRow, ModelError> {
    let design = arch
        .generate(16)
        .expect("16-bit generators are structurally valid");
    let stats = NetlistStats::measure(&design.netlist, lib);
    let sta = TimingAnalysis::analyze(&design.netlist, lib);
    let timed = measure_activity(
        &design.netlist,
        lib,
        Engine::Timed,
        items,
        design.cycles_per_item,
        4,
        seed,
    );
    let zd = measure_activity(
        &design.netlist,
        lib,
        Engine::BitParallel,
        items,
        design.cycles_per_item,
        4,
        seed,
    );
    let ld_eff = design.effective_logical_depth(sta.logical_depth());
    let params = ArchParams::builder(arch.paper_name())
        .cells(stats.logic_cells as u32)
        .activity(timed.activity)
        .logical_depth(ld_eff)
        .cap_per_cell(Farads::new(stats.avg_switched_cap_f))
        .area(SquareMicrons::new(stats.area_um2))
        .build()?;
    let model = PowerModel::from_technology(tech, params, freq)?;
    let opt = model.optimize()?;
    let eq13_uw = model
        .closed_form()
        .map(|cf| cf.ptot.value() * 1e6)
        .unwrap_or(f64::NAN);
    Ok(AbInitioRow {
        arch,
        cells: stats.logic_cells,
        area_um2: stats.area_um2,
        activity: timed.activity,
        activity_zero_delay: zd.activity,
        ld_eff,
        vdd: opt.vdd().value(),
        vth: opt.vth().value(),
        ptot_uw: opt.ptot().value() * 1e6,
        eq13_uw,
    })
}

/// Ab-initio characterization of an explicit architecture subset,
/// sharded across the `optpower-explore` worker pool.
///
/// Each architecture is one work item: workers steal whole
/// characterizations (the expensive, wildly size-varying unit), and
/// results come back in input order. The output is bit-identical for
/// any worker count — every item is an independent deterministic
/// computation; the pool only decides *who* runs it.
///
/// # Errors
///
/// Propagates the first [`ModelError`] in input order.
pub fn characterize_parallel(
    archs: &[Architecture],
    flavor: Flavor,
    items: u64,
    seed: u64,
    workers: Workers,
) -> Result<Vec<AbInitioRow>, ModelError> {
    let lib = Library::cmos13();
    let tech = Technology::stm_cmos09(flavor);
    let freq = Hertz::new(31.25e6);
    let n_workers = workers.resolve(archs.len());
    par_map(archs, n_workers, |&arch| {
        characterize_architecture(arch, &lib, tech, freq, items, seed)
    })
    .into_iter()
    .collect()
}

/// [`characterize_parallel`] over all thirteen architectures of
/// Table 1, in table order.
///
/// # Errors
///
/// Propagates the first [`ModelError`] in table order.
pub fn characterize_all_parallel(
    flavor: Flavor,
    items: u64,
    seed: u64,
    workers: Workers,
) -> Result<Vec<AbInitioRow>, ModelError> {
    characterize_parallel(&Architecture::ALL, flavor, items, seed, workers)
}

/// Renders the ab-initio table in the paper's Table 1 layout.
pub fn render_ab_initio(rows: &[AbInitioRow]) -> String {
    let mut t = Table::new(&[
        "arch", "N", "area", "a", "a(0d)", "LDeff", "Vdd", "Vth", "Ptot[uW]", "Eq13[uW]",
    ]);
    for r in rows {
        t.row(&[
            r.arch.paper_name().to_string(),
            r.cells.to_string(),
            fnum(r.area_um2, 0),
            fnum(r.activity, 4),
            fnum(r.activity_zero_delay, 4),
            fnum(r.ld_eff, 1),
            fnum(r.vdd, 3),
            fnum(r.vth, 3),
            fnum(r.ptot_uw, 2),
            if r.eq13_uw.is_nan() {
                "-".to_string()
            } else {
                fnum(r.eq13_uw, 2)
            },
        ]);
    }
    format!("Table 1' - ab-initio flow (no calibration against the paper)\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<AbInitioRow> {
        // Small stimulus volume keeps the debug-mode test quick while
        // remaining statistically stable for the coarse orderings.
        ab_initio_table(Flavor::LowLeakage, 60, 17).unwrap()
    }

    fn find(rows: &[AbInitioRow], arch: Architecture) -> &AbInitioRow {
        rows.iter().find(|r| r.arch == arch).expect("present")
    }

    #[test]
    fn section4_orderings_reproduce_ab_initio() {
        let rows = rows();
        let p = |a: Architecture| find(&rows, a).ptot_uw;
        // Sequential family is by far the worst.
        assert!(p(Architecture::Sequential) > 3.0 * p(Architecture::Rca));
        // The Wallace family is the best.
        assert!(p(Architecture::Wallace) < p(Architecture::Rca));
        // Pipelining and parallelisation help the RCA.
        assert!(p(Architecture::RcaHorPipe2) < p(Architecture::Rca));
        assert!(p(Architecture::RcaParallel2) < p(Architecture::Rca));
    }

    #[test]
    fn glitch_effect_diag_vs_hor() {
        let rows = rows();
        let a = |x: Architecture| find(&rows, x).activity;
        let ld = |x: Architecture| find(&rows, x).ld_eff;
        assert!(a(Architecture::RcaDiagPipe2) > a(Architecture::RcaHorPipe2));
        assert!(ld(Architecture::RcaDiagPipe2) < ld(Architecture::RcaHorPipe2));
    }

    #[test]
    fn activity_scale_matches_paper() {
        // Our RCA activity lands in the paper's neighbourhood (0.5056);
        // sequential exceeds 1 as the paper stresses.
        let rows = rows();
        let rca = find(&rows, Architecture::Rca);
        assert!(rca.activity > 0.3 && rca.activity < 1.5, "{}", rca.activity);
        assert!(find(&rows, Architecture::Sequential).activity > 1.0);
    }

    #[test]
    fn optimal_voltages_in_plausible_band() {
        for r in rows() {
            assert!(r.vdd > 0.2 && r.vdd < 1.3, "{}: vdd {}", r.arch, r.vdd);
            assert!(r.vth > 0.0 && r.vth < r.vdd, "{}: vth {}", r.arch, r.vth);
        }
    }

    #[test]
    fn render_lists_all() {
        let s = render_ab_initio(&rows());
        for arch in Architecture::ALL {
            assert!(s.contains(arch.paper_name()));
        }
    }

    #[test]
    fn parallel_characterization_is_worker_count_invariant() {
        // The pool only schedules; the rows must be bit-identical for
        // any worker count (compare a cheap two-architecture subset).
        let archs = [Architecture::Sequential, Architecture::Rca];
        let serial =
            characterize_parallel(&archs, Flavor::LowLeakage, 20, 3, Workers::Fixed(1)).unwrap();
        let parallel =
            characterize_parallel(&archs, Flavor::LowLeakage, 20, 3, Workers::Fixed(8)).unwrap();
        assert_eq!(serial.len(), 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.arch, p.arch);
            assert_eq!(s.cells, p.cells);
            assert_eq!(s.activity.to_bits(), p.activity.to_bits());
            assert_eq!(
                s.activity_zero_delay.to_bits(),
                p.activity_zero_delay.to_bits()
            );
            assert_eq!(s.ptot_uw.to_bits(), p.ptot_uw.to_bits());
        }
    }
}
