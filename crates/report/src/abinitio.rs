//! The ab-initio reproduction (Table 1′): every architectural
//! parameter measured from our own netlists, simulator and STA — no
//! calibration against the paper's numbers at all.
//!
//! Characterization (netlist generation → STA `LD` → activity
//! measurement → optimisation) is independent per architecture, so
//! [`characterize_parallel`] shards the thirteen architectures across
//! the `optpower-explore` worker pool. Both activity legs are
//! parallel: the glitch-free baseline uses the 64-lane
//! [`optpower_sim::BitParallelSim`] engine, and the glitch-counting
//! leg shards [`TIMED_LANES`] lane-seeded event-wheel
//! [`optpower_sim::TimedSim`] instances over the same pool
//! ([`optpower_explore::measure_timed_activity_pooled`]) — the
//! measured activity is worker-count invariant in both cases.
//!
//! The measured glitch factor `a(timed) / a(zero-delay)` per
//! architecture then feeds the *glitch-aware design-space sweep*
//! ([`glitch_aware_sweep`]): Table 1′ parameters — with activities
//! actually measured, glitches included — swept over every STM CMOS09
//! flavour and a log frequency axis on the exploration engine, with
//! CSV/JSON export for both the characterization table and the sweep
//! results.

use core::fmt;

use optpower::sweep::log_frequency_axis;
use optpower::{ArchParams, ModelError, PowerModel};
use optpower_explore::{
    explore, measure_timed_activity_pooled, par_map, ExploreConfig, Grid, ResultSet,
    TimedPoolConfig, Workers,
};
use optpower_mult::{Architecture, MultiplierDesign};
use optpower_netlist::{Library, NetlistStats};
use optpower_sim::{measure_activity, Engine, SimError};
use optpower_sta::TimingAnalysis;
use optpower_tech::{Flavor, Technology};
use optpower_units::{Farads, Hertz, SquareMicrons};

use crate::render::{fnum, Table};

/// Stimulus lanes of the pooled timed (glitch-counting) measurement:
/// the per-architecture item budget is split into this many
/// lane-seeded independent streams so the slowest engine in the flow
/// can use the worker pool. Part of the measurement definition — the
/// result never depends on the worker count, only on the lane split.
pub const TIMED_LANES: u32 = 8;

/// Errors of the ab-initio flow: either the power model/optimiser
/// failed, or a simulation failed — and then the error says *which*
/// architecture's netlist was at fault (the typed replacement for the
/// old in-library panic on oscillation).
#[derive(Debug, Clone, PartialEq)]
pub enum AbInitioError {
    /// Model building, calibration or optimisation failed.
    Model(ModelError),
    /// A simulation engine rejected or aborted an architecture's
    /// netlist (invalid library delay, oscillation).
    Sim {
        /// The architecture whose netlist failed.
        arch: Architecture,
        /// The underlying simulation error.
        source: SimError,
    },
}

impl fmt::Display for AbInitioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Model(e) => write!(f, "{e}"),
            Self::Sim { arch, source } => {
                write!(f, "simulating {} failed: {source}", arch.paper_name())
            }
        }
    }
}

impl std::error::Error for AbInitioError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Model(e) => Some(e),
            Self::Sim { source, .. } => Some(source),
        }
    }
}

impl From<ModelError> for AbInitioError {
    fn from(e: ModelError) -> Self {
        Self::Model(e)
    }
}

/// How the glitch-free baseline's stimulus volume is tiled across
/// bit-parallel plane lanes.
///
/// The *total* baseline volume is fixed by the config — `items`
/// per-lane items at the `baseline` engine's native lane count (64 for
/// the default [`Engine::BitParallel`]) — and the tiling only decides
/// how many lanes carry it: at a resolved width of `L` lanes each lane
/// runs `items × native_lanes / L` items. Note that retiling *is* a
/// different measurement (different per-lane stream lengths under
/// different [`optpower_sim::lane_seed`] seeds), so the tiling is part
/// of the measurement definition, not pure scheduling — which is why
/// the default stays `Fixed(64)` and legacy results are byte-stable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlaneTiling {
    /// Exactly this many plane lanes: 64, 256 or 512. Errors if the
    /// total volume is not divisible by the lane count.
    Fixed(u32),
    /// The widest supported plane (512, then 256, then 64) that
    /// divides the total stimulus volume evenly — equal-volume runs
    /// automatically pick the widest plane that fits the work.
    Auto,
}

/// Native lane count of a plane engine (`None` for scalar engines).
fn engine_lanes(engine: Engine) -> Option<u64> {
    match engine {
        Engine::BitParallel => Some(64),
        Engine::BitParallel256 => Some(256),
        Engine::BitParallel512 => Some(512),
        Engine::ZeroDelay | Engine::Timed | Engine::TimedScalar => None,
    }
}

/// The plane engine with `lanes` lanes.
fn engine_for_lanes(lanes: u64) -> Option<Engine> {
    match lanes {
        64 => Some(Engine::BitParallel),
        256 => Some(Engine::BitParallel256),
        512 => Some(Engine::BitParallel512),
        _ => None,
    }
}

impl PlaneTiling {
    /// Resolves the tiling against a baseline engine and per-lane item
    /// count: the effective `(engine, per_lane_items)` pair the
    /// baseline leg runs with.
    ///
    /// Scalar baselines (e.g. [`Engine::ZeroDelay`]) have no plane to
    /// tile: `Auto` and `Fixed(64)` leave them untouched, any other
    /// fixed width is an error.
    ///
    /// # Errors
    ///
    /// [`ModelError::InvalidArchParameter`] with field `"plane_lanes"`
    /// when the width is not 64/256/512, does not divide the total
    /// stimulus volume, or is wider than 64 on a scalar baseline.
    pub fn resolve(self, baseline: Engine, items: u64) -> Result<(Engine, u64), ModelError> {
        let invalid = |value: f64| ModelError::InvalidArchParameter {
            field: "plane_lanes",
            value,
        };
        let Some(native) = engine_lanes(baseline) else {
            return match self {
                PlaneTiling::Auto | PlaneTiling::Fixed(64) => Ok((baseline, items)),
                PlaneTiling::Fixed(l) => Err(invalid(f64::from(l))),
            };
        };
        let total = items * native;
        match self {
            PlaneTiling::Fixed(l) => {
                let l = u64::from(l);
                let engine = engine_for_lanes(l).ok_or_else(|| invalid(l as f64))?;
                if !total.is_multiple_of(l) {
                    return Err(invalid(l as f64));
                }
                Ok((engine, total / l))
            }
            PlaneTiling::Auto => {
                let l = [512u64, 256, 64]
                    .into_iter()
                    .find(|l| total.is_multiple_of(*l))
                    .unwrap_or(64);
                Ok((
                    engine_for_lanes(l).expect("auto widths are supported"),
                    total / l,
                ))
            }
        }
    }
}

/// Full configuration of one ab-initio characterization run — the
/// measurement definition as one value, so declarative job specs can
/// express everything the old binary flags could and more.
///
/// `width`, `lanes`, `baseline`, `plane`, `items` and `seed` are part
/// of the *measurement definition* (they decide which operands are
/// applied and how results are normalised); `workers` is pure
/// scheduling and never changes the result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizeConfig {
    /// Operand width in bits (the paper uses 16).
    pub width: usize,
    /// Stimulus lanes of the pooled timed (glitch-counting) leg.
    pub lanes: u32,
    /// Engine of the glitch-free baseline leg: [`Engine::BitParallel`]
    /// (64 stimulus lanes per item, the default) or
    /// [`Engine::ZeroDelay`] (the single-stream equivalent).
    pub baseline: Engine,
    /// Plane tiling of the glitch-free baseline leg: how many lanes
    /// the `items × 64` stimulus volume is spread over (default
    /// `Fixed(64)`, the legacy-identical shape).
    pub plane: PlaneTiling,
    /// Random-stimulus volume per architecture.
    pub items: u64,
    /// Base stimulus seed.
    pub seed: u64,
    /// Worker-count policy (wall-clock only, never the result).
    pub workers: Workers,
}

impl CharacterizeConfig {
    /// The paper's measurement shape: 16-bit operands,
    /// [`TIMED_LANES`] timed lanes, bit-parallel glitch-free baseline
    /// on the legacy 64-lane plane.
    pub fn new(items: u64, seed: u64) -> Self {
        Self {
            width: 16,
            lanes: TIMED_LANES,
            baseline: Engine::BitParallel,
            plane: PlaneTiling::Fixed(64),
            items,
            seed,
            workers: Workers::Auto,
        }
    }

    /// The effective `(engine, per_lane_items)` of the glitch-free
    /// baseline leg after plane tiling.
    ///
    /// # Errors
    ///
    /// As [`PlaneTiling::resolve`], wrapped in
    /// [`AbInitioError::Model`].
    pub fn resolved_baseline(&self) -> Result<(Engine, u64), AbInitioError> {
        self.plane
            .resolve(self.baseline, self.items)
            .map_err(AbInitioError::Model)
    }
}

/// One architecture's ab-initio measurement and optimisation result.
#[derive(Debug, Clone)]
pub struct AbInitioRow {
    /// The architecture.
    pub arch: Architecture,
    /// Operand width the measurement ran at (16 in the paper).
    pub width: usize,
    /// Measured cell count `N`.
    pub cells: usize,
    /// Measured area in µm².
    pub area_um2: f64,
    /// Measured activity (timed engine, glitches included; pooled
    /// over [`TIMED_LANES`] lane-seeded streams).
    pub activity: f64,
    /// Measured glitch-free activity (bit-parallel engine: 64
    /// zero-delay stimulus lanes per item).
    pub activity_zero_delay: f64,
    /// Measured average switched capacitance per cell \[F\].
    pub cap_per_cell_f: f64,
    /// Effective logical depth per throughput period.
    pub ld_eff: f64,
    /// Optimal supply voltage \[V\].
    pub vdd: f64,
    /// Optimal threshold voltage \[V\].
    pub vth: f64,
    /// Optimal total power, numerical \[µW\].
    pub ptot_uw: f64,
    /// Optimal total power by Eq. 13 \[µW\] (NaN when the closed form is
    /// undefined, e.g. `χA ≥ 1` for the sequential designs).
    pub eq13_uw: f64,
}

impl AbInitioRow {
    /// The measured glitch amplification factor
    /// `a(timed) / a(zero-delay)`: how much switching the
    /// architecture's unbalanced path delays add on top of its
    /// functional activity. ~1 for well-balanced trees, rising on deep
    /// ripple arrays and diagonal pipeline cuts.
    pub fn glitch_factor(&self) -> f64 {
        self.activity / self.activity_zero_delay
    }

    /// The row's name on a design-space axis: the paper name at the
    /// paper's 16-bit width, width-qualified otherwise — so a sweep
    /// mixing operand widths never aliases two rows.
    pub fn axis_name(&self) -> String {
        if self.width == 16 {
            self.arch.paper_name().to_string()
        } else {
            format!("{} {}b", self.arch.paper_name(), self.width)
        }
    }
}

/// Runs the full ab-initio flow for all thirteen architectures:
/// generate → simulate (activity) → STA (LD) → library stats (N, C)
/// → optimise at the paper's 31.25 MHz on the chosen flavour.
///
/// `items` controls the random-stimulus volume per architecture (the
/// paper used full testbench traces; 200+ items give stable
/// activities). The glitch-counting leg splits the budget over
/// [`TIMED_LANES`] pooled event-wheel lanes; the glitch-free baseline
/// gets 64 bit-parallel stimulus lanes per item. Architectures are
/// characterized in parallel on every available core; see
/// [`characterize_parallel`] for the worker-count-independence
/// contract.
///
/// # Errors
///
/// Propagates [`AbInitioError`] from simulation, model building or
/// optimisation.
///
/// # Panics
///
/// Panics if a generator fails structurally (impossible for width 16).
pub fn ab_initio_table(
    flavor: Flavor,
    items: u64,
    seed: u64,
) -> Result<Vec<AbInitioRow>, AbInitioError> {
    characterize_all_parallel(flavor, items, seed, Workers::Auto)
}

/// Ab-initio characterization of one architecture: generate → library
/// stats (N, C) → STA (LD) → activity (pooled timed + bit-parallel
/// glitch-free) → optimise at `freq` on `tech`.
///
/// `timed_workers` is the worker policy for the pooled timed
/// measurement only — it affects wall-clock, never the result.
///
/// # Errors
///
/// Propagates [`AbInitioError`]; simulation failures carry the
/// offending architecture.
///
/// # Panics
///
/// Panics if the generator fails structurally (impossible for width
/// 16).
pub fn characterize_architecture(
    arch: Architecture,
    lib: &Library,
    tech: Technology,
    freq: Hertz,
    items: u64,
    seed: u64,
    timed_workers: Workers,
) -> Result<AbInitioRow, AbInitioError> {
    let config = CharacterizeConfig {
        workers: timed_workers,
        ..CharacterizeConfig::new(items, seed)
    };
    characterize_architecture_with(arch, lib, tech, freq, &config)
}

/// [`characterize_architecture`] with the full measurement definition
/// — operand width, timed lane count and glitch-free baseline engine
/// included — as one [`CharacterizeConfig`]. `config.workers` is used
/// for the pooled timed leg.
///
/// # Errors
///
/// [`AbInitioError::Model`] with [`ModelError::InvalidArchParameter`]
/// when the architecture does not support `config.width` (e.g. a
/// non-power-of-two width on the sequential family); otherwise as
/// [`characterize_architecture`].
pub fn characterize_architecture_with(
    arch: Architecture,
    lib: &Library,
    tech: Technology,
    freq: Hertz,
    config: &CharacterizeConfig,
) -> Result<AbInitioRow, AbInitioError> {
    if !arch.supports_width(config.width) {
        return Err(AbInitioError::Model(ModelError::InvalidArchParameter {
            field: "width",
            value: config.width as f64,
        }));
    }
    let design = arch
        .generate(config.width)
        .expect("supported widths generate structurally valid netlists");
    characterize_design_with(&design, lib, tech, freq, config)
}

/// Measures and optimises an already-generated [`MultiplierDesign`]:
/// the [`characterize_architecture_with`] flow minus the generation
/// step. This lets callers characterize netlist variants that the
/// [`Architecture`] entry points would not produce — e.g. the raw
/// (pre-prune) form from [`Architecture::generate_raw`] for the
/// dead-cone before/after power delta. `config.width` is ignored in
/// favour of `design.width`; lanes, baseline engine, items, seed and
/// workers apply as in [`characterize_architecture_with`].
///
/// # Errors
///
/// As [`characterize_architecture`]: simulation failures carry the
/// design's architecture, model/optimiser failures are propagated.
pub fn characterize_design_with(
    design: &MultiplierDesign,
    lib: &Library,
    tech: Technology,
    freq: Hertz,
    config: &CharacterizeConfig,
) -> Result<AbInitioRow, AbInitioError> {
    let arch = design.arch;
    let (baseline_engine, baseline_items) = config.resolved_baseline()?;
    let stats = NetlistStats::measure(&design.netlist, lib);
    let sta = TimingAnalysis::analyze(&design.netlist, lib);
    let sim_err = |source: SimError| AbInitioError::Sim { arch, source };
    // The timed budget follows the *total* stimulus volume, expressed
    // in per-64-lane units: `items` counts per-lane items of the
    // baseline plane, so a native wide baseline (256/512 lanes) carries
    // `native/64`× more volume per item and the glitch leg must scale
    // with it — otherwise equal-volume configs (native wide vs retiled
    // 64-lane) would disagree on the timed leg. Scalar baselines keep
    // the legacy single-stream budget.
    let timed_items = match engine_lanes(config.baseline) {
        Some(native) => config.items * native / 64,
        None => config.items,
    };
    let timed_config = TimedPoolConfig {
        lanes: config.lanes,
        items_per_lane: timed_items.div_ceil(u64::from(config.lanes)).max(1),
        cycles_per_item: design.cycles_per_item,
        warmup: 4,
        seed: config.seed,
        workers: config.workers,
    };
    let timed =
        measure_timed_activity_pooled(&design.netlist, lib, &timed_config).map_err(sim_err)?;
    let zd = measure_activity(
        &design.netlist,
        lib,
        baseline_engine,
        baseline_items,
        design.cycles_per_item,
        4,
        config.seed,
    )
    .map_err(sim_err)?;
    let ld_eff = design.effective_logical_depth(sta.logical_depth());
    let params = ArchParams::builder(arch.paper_name())
        .cells(stats.logic_cells as u32)
        .activity(timed.activity)
        .logical_depth(ld_eff)
        .cap_per_cell(Farads::new(stats.avg_switched_cap_f))
        .build()?;
    let model = PowerModel::from_technology(tech, params, freq)?;
    let opt = model.optimize()?;
    let eq13_uw = model
        .closed_form()
        .map(|cf| cf.ptot.value() * 1e6)
        .unwrap_or(f64::NAN);
    Ok(AbInitioRow {
        arch,
        width: design.width,
        cells: stats.logic_cells,
        area_um2: stats.area_um2,
        activity: timed.activity,
        activity_zero_delay: zd.activity,
        cap_per_cell_f: stats.avg_switched_cap_f,
        ld_eff,
        vdd: opt.vdd().value(),
        vth: opt.vth().value(),
        ptot_uw: opt.ptot().value() * 1e6,
        eq13_uw,
    })
}

/// Ab-initio characterization of an explicit architecture subset,
/// sharded across the `optpower-explore` worker pool.
///
/// The worker budget is split two levels deep: whole architectures
/// are stolen by the outer pool (the expensive, wildly size-varying
/// unit), and each architecture's pooled timed measurement gets the
/// remaining workers for its [`TIMED_LANES`] stimulus lanes — so a
/// few very slow netlists (the 61-deep RCA, the sequential cores)
/// cannot serialise the tail of the sweep. Results come back in input
/// order and are bit-identical for any worker count — every lane and
/// every architecture is an independent deterministic computation;
/// the pools only decide *who* runs them.
///
/// # Errors
///
/// Propagates the first [`AbInitioError`] in input order.
pub fn characterize_parallel(
    archs: &[Architecture],
    flavor: Flavor,
    items: u64,
    seed: u64,
    workers: Workers,
) -> Result<Vec<AbInitioRow>, AbInitioError> {
    let config = CharacterizeConfig {
        workers,
        ..CharacterizeConfig::new(items, seed)
    };
    characterize_parallel_with(archs, flavor, &config)
}

/// [`characterize_parallel`] with the full [`CharacterizeConfig`]
/// measurement definition (operand width, timed lanes, baseline
/// engine). The two-level worker split of [`characterize_parallel`]
/// applies, with `config.workers` as the total budget.
///
/// # Errors
///
/// Propagates the first [`AbInitioError`] in input order.
pub fn characterize_parallel_with(
    archs: &[Architecture],
    flavor: Flavor,
    config: &CharacterizeConfig,
) -> Result<Vec<AbInitioRow>, AbInitioError> {
    let lib = Library::cmos13();
    let tech = Technology::stm_cmos09(flavor);
    let freq = Hertz::new(31.25e6);
    let total = match config.workers {
        Workers::Auto => optpower_explore::available_workers(),
        Workers::Fixed(n) => n.max(1),
    };
    let outer = total.clamp(1, archs.len().max(1));
    let inner = CharacterizeConfig {
        workers: Workers::Fixed((total / outer).max(1)),
        ..*config
    };
    par_map(archs, outer, |&arch| {
        characterize_architecture_with(arch, &lib, tech, freq, &inner)
    })
    .into_iter()
    .collect()
}

/// [`characterize_parallel`] over all thirteen architectures of
/// Table 1, in table order.
///
/// # Errors
///
/// Propagates the first [`AbInitioError`] in table order.
pub fn characterize_all_parallel(
    flavor: Flavor,
    items: u64,
    seed: u64,
    workers: Workers,
) -> Result<Vec<AbInitioRow>, AbInitioError> {
    characterize_parallel(&Architecture::ALL, flavor, items, seed, workers)
}

/// Which measured activity feeds a design-space sweep built from
/// ab-initio rows — the "activity source" of the exploration engine's
/// architecture axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivitySource {
    /// Timed activity, glitches included: the physically honest
    /// source, and what the paper's Table 1 reports.
    MeasuredTimed,
    /// Zero-delay activity: the counterfactual "no glitches" world.
    /// Sweeping both sources prices the glitch cost in the design
    /// space.
    MeasuredZeroDelay,
}

/// Converts measured ab-initio rows into the exploration engine's
/// [`ArchParams`] axis, drawing the activity from `source`.
///
/// # Errors
///
/// [`ModelError::InvalidArchParameter`] if a measured value is out of
/// physical range (e.g. an activity of 0 from a degenerate stimulus
/// volume).
pub fn measured_arch_params(
    rows: &[AbInitioRow],
    source: ActivitySource,
) -> Result<Vec<ArchParams>, ModelError> {
    rows.iter()
        .map(|r| {
            let activity = match source {
                ActivitySource::MeasuredTimed => r.activity,
                ActivitySource::MeasuredZeroDelay => r.activity_zero_delay,
            };
            ArchParams::builder(r.axis_name())
                .cells(r.cells as u32)
                .activity(activity)
                .logical_depth(r.ld_eff)
                .cap_per_cell(Farads::new(r.cap_per_cell_f))
                .area(SquareMicrons::new(r.area_um2))
                .build()
        })
        .collect()
}

/// A glitch-aware design-space sweep: the measured Table 1′
/// parameters swept over all three STM CMOS09 flavours and a log
/// frequency axis, once with glitch-inclusive activities and once
/// with the glitch-free baseline.
#[derive(Debug, Clone)]
pub struct GlitchSweep {
    /// The characterization rows the sweep was built from.
    pub rows: Vec<AbInitioRow>,
    /// The swept frequency axis.
    pub frequencies: Vec<Hertz>,
    /// Sweep results with measured timed (glitch-aware) activities,
    /// in grid order (tech-major, frequency fastest).
    pub glitch_aware: ResultSet,
    /// The same grid with glitch-free (zero-delay) activities.
    pub glitch_free: ResultSet,
}

impl GlitchSweep {
    /// Total extra optimal power the glitches cost across all closed
    /// points present in both sweeps, in watts — the design-space-wide
    /// price of unbalanced path delays.
    pub fn total_glitch_cost_w(&self) -> f64 {
        self.glitch_aware
            .records()
            .iter()
            .zip(self.glitch_free.records())
            .filter_map(|(a, f)| Some(a.optimum()?.ptot().value() - f.optimum()?.ptot().value()))
            .sum()
    }
}

/// Runs the full glitch-aware sweep: characterize every architecture
/// ([`characterize_all_parallel`] on `flavor` at 31.25 MHz for the
/// table's optimal points), then sweep the measured parameters over
/// all three flavours × `freq_points` log-spaced frequencies in
/// `[1 MHz, 250 MHz]` on the exploration engine — once per
/// [`ActivitySource`].
///
/// # Errors
///
/// Propagates [`AbInitioError`] from characterization or model
/// building.
pub fn glitch_aware_sweep(
    flavor: Flavor,
    items: u64,
    seed: u64,
    freq_points: usize,
    workers: Workers,
) -> Result<GlitchSweep, AbInitioError> {
    let rows = characterize_all_parallel(flavor, items, seed, workers)?;
    glitch_sweep_from_rows(rows, freq_points, workers)
}

/// Builds the glitch-aware and glitch-free sweeps from already
/// characterized rows (so a caller can reuse one characterization for
/// table rendering *and* the sweep).
///
/// # Errors
///
/// Propagates [`AbInitioError::Model`] for invalid measured
/// parameters or an empty row set.
pub fn glitch_sweep_from_rows(
    rows: Vec<AbInitioRow>,
    freq_points: usize,
    workers: Workers,
) -> Result<GlitchSweep, AbInitioError> {
    if rows.is_empty() {
        return Err(AbInitioError::Model(ModelError::InvalidCalibration {
            reason: "glitch sweep needs at least one characterized architecture",
        }));
    }
    let frequencies = log_frequency_axis(Hertz::new(1e6), Hertz::new(250e6), freq_points)
        .map_err(AbInitioError::Model)?;
    let config = ExploreConfig {
        workers,
        ..ExploreConfig::default()
    };
    let sweep_with = |source: ActivitySource| -> Result<ResultSet, AbInitioError> {
        let grid = Grid::builder()
            .technologies(Flavor::ALL.iter().map(|&fl| Technology::stm_cmos09(fl)))
            .architectures(measured_arch_params(&rows, source)?)
            .frequencies(frequencies.iter().copied())
            .build()
            .expect("all three axes are non-empty and validated");
        Ok(explore(&grid, &config))
    };
    Ok(GlitchSweep {
        glitch_aware: sweep_with(ActivitySource::MeasuredTimed)?,
        glitch_free: sweep_with(ActivitySource::MeasuredZeroDelay)?,
        rows,
        frequencies,
    })
}

/// Renders the ab-initio table in the paper's Table 1 layout, plus
/// the measured glitch-factor column.
pub fn render_ab_initio(rows: &[AbInitioRow]) -> String {
    let mut t = Table::new(&[
        "arch", "N", "area", "a", "a(0d)", "glitch x", "LDeff", "Vdd", "Vth", "Ptot[uW]",
        "Eq13[uW]",
    ]);
    for r in rows {
        t.row(&[
            r.arch.paper_name().to_string(),
            r.cells.to_string(),
            fnum(r.area_um2, 0),
            fnum(r.activity, 4),
            fnum(r.activity_zero_delay, 4),
            fnum(r.glitch_factor(), 2),
            fnum(r.ld_eff, 1),
            fnum(r.vdd, 3),
            fnum(r.vth, 3),
            fnum(r.ptot_uw, 2),
            if r.eq13_uw.is_nan() {
                "-".to_string()
            } else {
                fnum(r.eq13_uw, 2)
            },
        ]);
    }
    format!("Table 1' - ab-initio flow (no calibration against the paper)\n{t}")
}

/// Renders the measured glitch factors as an ASCII bar figure — the
/// per-architecture companion row to the paper's Figures 3/4 glitch
/// observation, from the full 13-architecture characterization.
pub fn render_glitch_factors(rows: &[AbInitioRow]) -> String {
    let mut out =
        String::from("Measured glitch factor a(timed) / a(zero-delay) per architecture\n");
    let max = rows
        .iter()
        .map(AbInitioRow::glitch_factor)
        .fold(1.0, f64::max);
    for r in rows {
        let g = r.glitch_factor();
        let bar = "#".repeat(((g / max) * 40.0).round().max(1.0) as usize);
        out.push_str(&format!(
            "{:<16} {:>5} |{}\n",
            r.arch.paper_name(),
            fnum(g, 2),
            bar
        ));
    }
    out
}

/// Exports the characterization rows (glitch factor included) as CSV.
pub fn glitch_rows_to_csv(rows: &[AbInitioRow]) -> String {
    let mut out = String::from(
        "arch,width,cells,area_um2,activity_timed,activity_zero_delay,glitch_factor,\
         ld_eff,cap_per_cell_f,vdd_v,vth_v,ptot_uw,eq13_uw\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{},{},{},{:e},{:e},{:e},{:e},{:e},{:e},{:e},{:e},{:e},{}\n",
            csv_field(r.arch.paper_name()),
            r.width,
            r.cells,
            r.area_um2,
            r.activity,
            r.activity_zero_delay,
            r.glitch_factor(),
            r.ld_eff,
            r.cap_per_cell_f,
            r.vdd,
            r.vth,
            r.ptot_uw,
            if r.eq13_uw.is_nan() {
                String::new()
            } else {
                format!("{:e}", r.eq13_uw)
            },
        ));
    }
    out
}

/// Exports the characterization rows as a JSON document
/// (`{"schema":"optpower-abinitio/v1","rows":[…]}`), dependency-free
/// like the `optpower-explore` exports.
pub fn glitch_rows_to_json(rows: &[AbInitioRow]) -> String {
    let mut out = String::from("{\"schema\":\"optpower-abinitio/v1\",\"rows\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"arch\":{},\"width\":{},\"cells\":{},\"area_um2\":{},\"activity_timed\":{},\
             \"activity_zero_delay\":{},\"glitch_factor\":{},\"ld_eff\":{},\
             \"cap_per_cell_f\":{},\"vdd_v\":{},\"vth_v\":{},\"ptot_uw\":{},\
             \"eq13_uw\":{}}}",
            json_string(r.arch.paper_name()),
            r.width,
            r.cells,
            json_num(r.area_um2),
            json_num(r.activity),
            json_num(r.activity_zero_delay),
            json_num(r.glitch_factor()),
            json_num(r.ld_eff),
            json_num(r.cap_per_cell_f),
            json_num(r.vdd),
            json_num(r.vth),
            json_num(r.ptot_uw),
            json_num(r.eq13_uw),
        ));
    }
    out.push_str("]}");
    out
}

/// Quotes a CSV field when it contains a separator, quote or newline.
/// (Architecture names are plain, but keep the export robust.)
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Encodes an `f64` as a JSON value: non-finite numbers (the undefined
/// Eq. 13 closed form, a glitch factor over a zero baseline) have no
/// JSON literal and become `null`.
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:e}")
    } else {
        "null".to_string()
    }
}

/// Encodes a JSON string literal with the mandatory escapes.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<AbInitioRow> {
        // Small stimulus volume keeps the debug-mode test quick while
        // remaining statistically stable for the coarse orderings.
        ab_initio_table(Flavor::LowLeakage, 60, 17).unwrap()
    }

    fn find(rows: &[AbInitioRow], arch: Architecture) -> &AbInitioRow {
        rows.iter().find(|r| r.arch == arch).expect("present")
    }

    #[test]
    fn section4_orderings_reproduce_ab_initio() {
        let rows = rows();
        let p = |a: Architecture| find(&rows, a).ptot_uw;
        // Sequential family is by far the worst.
        assert!(p(Architecture::Sequential) > 3.0 * p(Architecture::Rca));
        // The Wallace family is the best.
        assert!(p(Architecture::Wallace) < p(Architecture::Rca));
        // Pipelining and parallelisation help the RCA.
        assert!(p(Architecture::RcaHorPipe2) < p(Architecture::Rca));
        assert!(p(Architecture::RcaParallel2) < p(Architecture::Rca));
    }

    #[test]
    fn glitch_effect_diag_vs_hor() {
        let rows = rows();
        let a = |x: Architecture| find(&rows, x).activity;
        let ld = |x: Architecture| find(&rows, x).ld_eff;
        assert!(a(Architecture::RcaDiagPipe2) > a(Architecture::RcaHorPipe2));
        assert!(ld(Architecture::RcaDiagPipe2) < ld(Architecture::RcaHorPipe2));
    }

    #[test]
    fn activity_scale_matches_paper() {
        // Our RCA activity lands in the paper's neighbourhood (0.5056);
        // sequential exceeds 1 as the paper stresses.
        let rows = rows();
        let rca = find(&rows, Architecture::Rca);
        assert!(rca.activity > 0.3 && rca.activity < 1.5, "{}", rca.activity);
        assert!(find(&rows, Architecture::Sequential).activity > 1.0);
    }

    #[test]
    fn glitch_factors_are_physical() {
        // Glitches only add switching: factor >= 1 (up to statistical
        // noise) everywhere, and the deep ripple array glitches more
        // than the balanced Wallace tree.
        let rows = rows();
        for r in &rows {
            assert!(
                r.glitch_factor() > 0.95,
                "{}: {}",
                r.arch,
                r.glitch_factor()
            );
        }
        assert!(
            find(&rows, Architecture::Rca).glitch_factor()
                > find(&rows, Architecture::Wallace).glitch_factor()
        );
    }

    #[test]
    fn optimal_voltages_in_plausible_band() {
        for r in rows() {
            assert!(r.vdd > 0.2 && r.vdd < 1.3, "{}: vdd {}", r.arch, r.vdd);
            assert!(r.vth > 0.0 && r.vth < r.vdd, "{}: vth {}", r.arch, r.vth);
        }
    }

    #[test]
    fn render_lists_all() {
        let rows = rows();
        let s = render_ab_initio(&rows);
        for arch in Architecture::ALL {
            assert!(s.contains(arch.paper_name()));
        }
        assert!(s.contains("glitch x"));
        let fig = render_glitch_factors(&rows);
        for arch in Architecture::ALL {
            assert!(fig.contains(arch.paper_name()));
        }
        assert!(fig.contains('#'));
    }

    #[test]
    fn exports_cover_every_row() {
        let rows = rows();
        let csv = glitch_rows_to_csv(&rows);
        assert_eq!(csv.lines().count(), 1 + rows.len());
        assert!(csv.lines().next().unwrap().contains("glitch_factor"));
        let json = glitch_rows_to_json(&rows);
        assert!(json.starts_with("{\"schema\":\"optpower-abinitio/v1\""));
        assert_eq!(json.matches("\"glitch_factor\":").count(), rows.len());
        assert_eq!(json.matches("\"eq13_uw\":").count(), rows.len());
        assert!(!json.contains("NaN") && !json.contains("inf"));
        // A row with an undefined closed form (NaN Eq. 13) must stay
        // parseable JSON: the slot becomes `null`, never a bare token.
        let mut nan_row = rows[0].clone();
        nan_row.eq13_uw = f64::NAN;
        let json = glitch_rows_to_json(&[nan_row]);
        assert!(json.contains("\"eq13_uw\":null"));
        assert!(!json.contains("NaN"));
    }

    #[test]
    fn json_helpers_guard_the_edge_cases() {
        assert_eq!(json_num(1.5), "1.5e0");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_string("RCA hor.pipe2"), "\"RCA hor.pipe2\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parallel_characterization_is_worker_count_invariant() {
        // The pools only schedule; the rows must be bit-identical for
        // any worker count (compare a cheap two-architecture subset).
        let archs = [Architecture::Sequential, Architecture::Rca];
        let serial =
            characterize_parallel(&archs, Flavor::LowLeakage, 20, 3, Workers::Fixed(1)).unwrap();
        let parallel =
            characterize_parallel(&archs, Flavor::LowLeakage, 20, 3, Workers::Fixed(8)).unwrap();
        assert_eq!(serial.len(), 2);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.arch, p.arch);
            assert_eq!(s.cells, p.cells);
            assert_eq!(s.activity.to_bits(), p.activity.to_bits());
            assert_eq!(
                s.activity_zero_delay.to_bits(),
                p.activity_zero_delay.to_bits()
            );
            assert_eq!(s.ptot_uw.to_bits(), p.ptot_uw.to_bits());
        }
    }

    #[test]
    fn glitch_sweep_prices_glitches_in_the_design_space() {
        // A cheap two-architecture sweep: measured glitch-aware optima
        // must cost at least the glitch-free ones wherever both close.
        let archs = [Architecture::Rca, Architecture::Wallace];
        let rows = characterize_parallel(&archs, Flavor::LowLeakage, 30, 5, Workers::Auto).unwrap();
        let sweep = glitch_sweep_from_rows(rows, 4, Workers::Auto).unwrap();
        assert_eq!(sweep.frequencies.len(), 4);
        assert_eq!(sweep.glitch_aware.len(), 3 * 2 * 4);
        assert_eq!(sweep.glitch_free.len(), 3 * 2 * 4);
        let mut compared = 0;
        for (a, f) in sweep
            .glitch_aware
            .records()
            .iter()
            .zip(sweep.glitch_free.records())
        {
            assert_eq!(a.tech, f.tech);
            assert_eq!(a.arch, f.arch);
            if let (Some(pa), Some(pf)) = (a.optimum(), f.optimum()) {
                assert!(
                    pa.ptot().value() >= pf.ptot().value() * 0.999,
                    "{}/{}: glitch-aware {} < glitch-free {}",
                    a.tech,
                    a.arch,
                    pa.ptot().value(),
                    pf.ptot().value()
                );
                compared += 1;
            }
        }
        assert!(compared > 0, "no point closed in both sweeps");
        assert!(sweep.total_glitch_cost_w() >= 0.0);
    }

    #[test]
    fn width_axis_characterizes_and_names_rows() {
        let cfg8 = CharacterizeConfig {
            width: 8,
            ..CharacterizeConfig::new(20, 3)
        };
        let rows8 =
            characterize_parallel_with(&[Architecture::Rca], Flavor::LowLeakage, &cfg8).unwrap();
        assert_eq!(rows8[0].width, 8);
        assert_eq!(rows8[0].axis_name(), "RCA 8b");
        let rows16 = characterize_parallel_with(
            &[Architecture::Rca],
            Flavor::LowLeakage,
            &CharacterizeConfig::new(20, 3),
        )
        .unwrap();
        // 16-bit rows keep the bare paper name (legacy-identical axes).
        assert_eq!(rows16[0].axis_name(), "RCA");
        assert!(rows8[0].cells < rows16[0].cells);
        // A mixed-width sweep has no axis-name collisions.
        let mixed: Vec<AbInitioRow> = rows8.iter().chain(&rows16).cloned().collect();
        let params = measured_arch_params(&mixed, ActivitySource::MeasuredTimed).unwrap();
        assert_eq!(params[0].name(), "RCA 8b");
        assert_eq!(params[1].name(), "RCA");
        // Unsupported width -> typed error, not a generator panic.
        let bad = CharacterizeConfig {
            width: 24,
            ..CharacterizeConfig::new(20, 3)
        };
        let err = characterize_architecture_with(
            Architecture::Sequential,
            &Library::cmos13(),
            Technology::stm_cmos09(Flavor::LowLeakage),
            Hertz::new(31.25e6),
            &bad,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            AbInitioError::Model(ModelError::InvalidArchParameter { field: "width", .. })
        ));
    }

    #[test]
    fn baseline_engine_is_configurable() {
        // A ZeroDelay baseline consumes exactly the lane-0 stream, so
        // it reproduces the scalar measurement; the default 64-lane
        // bit-parallel baseline averages more stimulus but stays in
        // the same neighbourhood.
        let zd_cfg = CharacterizeConfig {
            baseline: Engine::ZeroDelay,
            ..CharacterizeConfig::new(30, 11)
        };
        let zd = characterize_parallel_with(&[Architecture::Wallace], Flavor::LowLeakage, &zd_cfg)
            .unwrap();
        let bp = characterize_parallel_with(
            &[Architecture::Wallace],
            Flavor::LowLeakage,
            &CharacterizeConfig::new(30, 11),
        )
        .unwrap();
        // Timed leg identical (same lanes/seed); baselines close but
        // generally not bit-equal (different stimulus volume).
        assert_eq!(zd[0].activity.to_bits(), bp[0].activity.to_bits());
        assert!((zd[0].activity_zero_delay - bp[0].activity_zero_delay).abs() < 0.1);
    }

    #[test]
    fn plane_tiling_resolves_widths_and_volumes() {
        // Fixed retiling preserves total volume: 60 per-lane items on
        // the 64-lane baseline = 3840 vectors = 15 per lane at 256.
        assert_eq!(
            PlaneTiling::Fixed(256).resolve(Engine::BitParallel, 60),
            Ok((Engine::BitParallel256, 15))
        );
        assert_eq!(
            PlaneTiling::Fixed(64).resolve(Engine::BitParallel, 60),
            Ok((Engine::BitParallel, 60))
        );
        // 3840 is not divisible by 512: Fixed errors, Auto falls back
        // to the widest divisor (256).
        assert!(matches!(
            PlaneTiling::Fixed(512).resolve(Engine::BitParallel, 60),
            Err(ModelError::InvalidArchParameter {
                field: "plane_lanes",
                ..
            })
        ));
        assert_eq!(
            PlaneTiling::Auto.resolve(Engine::BitParallel, 60),
            Ok((Engine::BitParallel256, 15))
        );
        // 8 × 64 = 512 vectors: Auto picks the full 512-lane plane.
        assert_eq!(
            PlaneTiling::Auto.resolve(Engine::BitParallel, 8),
            Ok((Engine::BitParallel512, 1))
        );
        // Unsupported widths are typed errors.
        assert!(PlaneTiling::Fixed(13)
            .resolve(Engine::BitParallel, 60)
            .is_err());
        // Scalar baselines have no plane: Auto/Fixed(64) are no-ops,
        // wider fixed planes are errors.
        assert_eq!(
            PlaneTiling::Auto.resolve(Engine::ZeroDelay, 60),
            Ok((Engine::ZeroDelay, 60))
        );
        assert_eq!(
            PlaneTiling::Fixed(64).resolve(Engine::ZeroDelay, 60),
            Ok((Engine::ZeroDelay, 60))
        );
        assert!(PlaneTiling::Fixed(256)
            .resolve(Engine::ZeroDelay, 60)
            .is_err());
    }

    #[test]
    fn retiled_baseline_is_bit_identical_to_the_native_wide_engine() {
        // Fixed(256) over the 64-lane baseline is exactly the 256-lane
        // engine at the retiled per-lane volume: both configs must
        // produce bit-identical rows.
        let retiled = CharacterizeConfig {
            plane: PlaneTiling::Fixed(256),
            ..CharacterizeConfig::new(20, 7)
        };
        let native = CharacterizeConfig {
            baseline: Engine::BitParallel256,
            plane: PlaneTiling::Fixed(256),
            items: 5,
            ..CharacterizeConfig::new(20, 7)
        };
        let a = characterize_parallel_with(&[Architecture::Wallace], Flavor::LowLeakage, &retiled)
            .unwrap();
        let b = characterize_parallel_with(&[Architecture::Wallace], Flavor::LowLeakage, &native)
            .unwrap();
        assert_eq!(
            a[0].activity_zero_delay.to_bits(),
            b[0].activity_zero_delay.to_bits()
        );
        // The timed leg is untouched by the plane knob.
        assert_eq!(a[0].activity.to_bits(), b[0].activity.to_bits());
        // And an invalid tiling surfaces as the typed error.
        let bad = CharacterizeConfig {
            plane: PlaneTiling::Fixed(512),
            items: 30,
            ..CharacterizeConfig::new(30, 7)
        };
        let err = characterize_architecture_with(
            Architecture::Wallace,
            &Library::cmos13(),
            Technology::stm_cmos09(Flavor::LowLeakage),
            Hertz::new(31.25e6),
            &bad,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            AbInitioError::Model(ModelError::InvalidArchParameter {
                field: "plane_lanes",
                ..
            })
        ));
    }

    #[test]
    fn glitch_sweep_rejects_empty_rows() {
        let err = glitch_sweep_from_rows(Vec::new(), 3, Workers::Auto).unwrap_err();
        assert!(matches!(err, AbInitioError::Model(_)));
        assert!(err.to_string().contains("at least one"));
    }

    #[test]
    fn measured_params_pick_the_requested_activity_source() {
        let archs = [Architecture::Wallace];
        let rows = characterize_parallel(&archs, Flavor::LowLeakage, 20, 9, Workers::Auto).unwrap();
        let timed = measured_arch_params(&rows, ActivitySource::MeasuredTimed).unwrap();
        let zd = measured_arch_params(&rows, ActivitySource::MeasuredZeroDelay).unwrap();
        assert_eq!(timed[0].activity(), rows[0].activity);
        assert_eq!(zd[0].activity(), rows[0].activity_zero_delay);
        assert_eq!(timed[0].cells(), rows[0].cells as f64);
        assert_eq!(timed[0].logical_depth(), rows[0].ld_eff);
    }
}
