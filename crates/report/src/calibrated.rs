//! Calibrated reproduction of Tables 1–4: reverse-calibrate each
//! published optimal point, re-run the numerical optimiser and Eq. 13,
//! and put paper-vs-measured side by side.

use optpower::calibrate::{build_model, from_breakdown, from_total};
use optpower::reference::{
    Table1Row, WallaceFlavorRow, PAPER_FREQUENCY, TABLE1, TABLE3_ULL, TABLE4_HS,
};
use optpower::{ArchParams, ModelError, PowerModel};
use optpower_explore::{par_map, Workers};
use optpower_tech::{Flavor, Technology};
use optpower_units::{Farads, SquareMicrons, Volts, Watts};

use crate::render::{fnum, Table};

/// One architecture's paper-vs-measured comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct RowComparison {
    /// Architecture name as printed in the paper.
    pub name: String,
    /// Published optimal supply voltage \[V\].
    pub paper_vdd: f64,
    /// Our numerical optimum supply voltage \[V\].
    pub our_vdd: f64,
    /// Published optimal threshold voltage \[V\].
    pub paper_vth: f64,
    /// Our numerical optimum threshold voltage \[V\].
    pub our_vth: f64,
    /// Published numerical total power \[µW\].
    pub paper_ptot_uw: f64,
    /// Our numerical total power \[µW\].
    pub our_ptot_uw: f64,
    /// Published Eq. 13 total power \[µW\].
    pub paper_eq13_uw: f64,
    /// Our Eq. 13 total power \[µW\].
    pub our_eq13_uw: f64,
    /// Published Eq. 13 error \[%\].
    pub paper_err_pct: f64,
    /// Our Eq. 13 error \[%\] (`(Ptot − Eq13)/Eq13`, paper convention).
    pub our_err_pct: f64,
}

impl RowComparison {
    fn from_model(
        name: &str,
        model: &PowerModel,
        paper_vdd: f64,
        paper_vth: f64,
        paper_ptot_uw: f64,
        paper_eq13_uw: f64,
        paper_err_pct: f64,
    ) -> Result<Self, ModelError> {
        let num = model.optimize()?;
        let cf = model.closed_form()?;
        let our_ptot_uw = num.ptot().value() * 1e6;
        let our_eq13_uw = cf.ptot.value() * 1e6;
        Ok(Self {
            name: name.to_string(),
            paper_vdd,
            our_vdd: num.vdd().value(),
            paper_vth,
            our_vth: num.vth().value(),
            paper_ptot_uw,
            our_ptot_uw,
            paper_eq13_uw,
            our_eq13_uw,
            paper_err_pct,
            our_err_pct: (our_ptot_uw - our_eq13_uw) / our_eq13_uw * 100.0,
        })
    }
}

fn arch_from_row(row: &Table1Row) -> Result<ArchParams, ModelError> {
    ArchParams::builder(row.name)
        .cells(row.cells)
        .activity(row.activity)
        .logical_depth(row.ld_eff)
        .cap_per_cell(Farads::new(1e-15)) // replaced by calibration
        .area(SquareMicrons::new(row.area_um2))
        .build()
}

/// Calibrates and re-solves one Table 1 row — the unit of work shared
/// by the serial [`table1`] and parallel [`table1_parallel`] paths.
fn table1_row(tech: &Technology, row: &Table1Row) -> Result<RowComparison, ModelError> {
    let cal = from_breakdown(
        tech,
        Volts::new(row.vdd),
        Volts::new(row.vth),
        Watts::new(row.pdyn_uw * 1e-6),
        Watts::new(row.pstat_uw * 1e-6),
        f64::from(row.cells),
        row.activity,
        PAPER_FREQUENCY,
    )?;
    let model = build_model(*tech, arch_from_row(row)?, PAPER_FREQUENCY, cal)?;
    RowComparison::from_model(
        row.name,
        &model,
        row.vdd,
        row.vth,
        row.ptot_uw,
        row.eq13_uw,
        row.eq13_err_pct,
    )
}

/// Reproduces Table 1: all thirteen multipliers on the LL flavour,
/// calibrated from the published power *breakdown*.
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or solving.
pub fn table1() -> Result<Vec<RowComparison>, ModelError> {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    TABLE1.iter().map(|row| table1_row(&tech, row)).collect()
}

/// [`table1`] with each row calibrated and re-solved on its own
/// worker. Produces the same rows in the same order for any worker
/// policy.
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or solving.
pub fn table1_parallel(workers: Workers) -> Result<Vec<RowComparison>, ModelError> {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    par_map(&TABLE1, workers.resolve(TABLE1.len()), |row| {
        table1_row(&tech, row)
    })
    .into_iter()
    .collect()
}

/// The thirteen Table 1 row names, in published row order — the axis
/// [`table1_subset_parallel`] selects from, and the order a
/// distributed merge restores shard rows into.
pub fn table1_names() -> Vec<&'static str> {
    TABLE1.iter().map(|row| row.name).collect()
}

/// [`table1_parallel`] restricted to a subset of rows, selected by
/// paper name in the caller's order. Every selected row goes through
/// the identical per-row calibrate-and-solve unit of work, so a subset
/// row is bit-identical to the corresponding full-table row (names not
/// present in Table 1 are skipped; callers validate against
/// [`table1_names`] first).
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or solving.
pub fn table1_subset_parallel(
    names: &[String],
    workers: Workers,
) -> Result<Vec<RowComparison>, ModelError> {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    let rows: Vec<&Table1Row> = names
        .iter()
        .filter_map(|name| TABLE1.iter().find(|row| row.name == name))
        .collect();
    par_map(&rows, workers.resolve(rows.len()), |row| {
        table1_row(&tech, row)
    })
    .into_iter()
    .collect()
}

/// Prints Table 2 (the published flavour parameters) from the presets.
pub fn table2() -> Table {
    let mut t = Table::new(&[
        "flavor",
        "Vdd nom [V]",
        "Vth0 nom [V]",
        "Io [uA]",
        "zeta [pF]",
        "alpha",
        "n",
    ]);
    for flavor in Flavor::ALL {
        let tech = Technology::stm_cmos09(flavor);
        t.row(&[
            flavor.abbreviation().to_string(),
            fnum(tech.vdd_nom().value(), 1),
            fnum(tech.vth0_nom().value(), 3),
            fnum(tech.io().value() * 1e6, 2),
            fnum(tech.zeta().value() * 1e12, 1),
            fnum(tech.alpha(), 2),
            fnum(tech.n(), 2),
        ]);
    }
    t
}

fn wallace_flavor_table(
    flavor: Flavor,
    rows: &[WallaceFlavorRow; 3],
) -> Result<Vec<RowComparison>, ModelError> {
    let tech = Technology::stm_cmos09(flavor);
    rows.iter()
        .enumerate()
        .map(|(i, row)| {
            // Structural parameters are flavour-independent; reuse the
            // Table 1 (LL) Wallace-family rows.
            let structure = optpower::reference::wallace_structure(i);
            let cal = from_total(
                &tech,
                Volts::new(row.vdd),
                Volts::new(row.vth),
                Watts::new(row.ptot_uw * 1e-6),
                f64::from(structure.cells),
                structure.activity,
                PAPER_FREQUENCY,
            )?;
            let model = build_model(tech, arch_from_row(structure)?, PAPER_FREQUENCY, cal)?;
            RowComparison::from_model(
                row.name,
                &model,
                row.vdd,
                row.vth,
                row.ptot_uw,
                row.eq13_uw,
                row.eq13_err_pct,
            )
        })
        .collect()
}

/// Reproduces Table 3: the Wallace family on the ULL flavour,
/// calibrated from the published *total* power (stationarity solve).
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or solving.
pub fn table3() -> Result<Vec<RowComparison>, ModelError> {
    wallace_flavor_table(Flavor::UltraLowLeakage, &TABLE3_ULL)
}

/// Reproduces Table 4: the Wallace family on the HS flavour.
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or solving.
pub fn table4() -> Result<Vec<RowComparison>, ModelError> {
    wallace_flavor_table(Flavor::HighSpeed, &TABLE4_HS)
}

/// Renders comparison rows in the paper's column layout.
pub fn render_rows(title: &str, rows: &[RowComparison]) -> String {
    let mut t = Table::new(&[
        "arch", "Vdd(p)", "Vdd", "Vth(p)", "Vth", "Ptot(p)", "Ptot", "Eq13(p)", "Eq13", "err%(p)",
        "err%",
    ]);
    for r in rows {
        t.row(&[
            r.name.clone(),
            fnum(r.paper_vdd, 3),
            fnum(r.our_vdd, 3),
            fnum(r.paper_vth, 3),
            fnum(r.our_vth, 3),
            fnum(r.paper_ptot_uw, 2),
            fnum(r.our_ptot_uw, 2),
            fnum(r.paper_eq13_uw, 2),
            fnum(r.our_eq13_uw, 2),
            fnum(r.paper_err_pct, 2),
            fnum(r.our_err_pct, 2),
        ]);
    }
    format!("{title}\n{t}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_optimal_points() {
        let rows = table1().unwrap();
        assert_eq!(rows.len(), 13);
        for r in &rows {
            // Voltages within the paper's grid resolution + rounding.
            assert!(
                (r.our_vdd - r.paper_vdd).abs() < 0.02,
                "{}: vdd {} vs {}",
                r.name,
                r.our_vdd,
                r.paper_vdd
            );
            assert!(
                (r.our_vth - r.paper_vth).abs() < 0.02,
                "{}: vth {} vs {}",
                r.name,
                r.our_vth,
                r.paper_vth
            );
            // Totals within 2%.
            let rel = (r.our_ptot_uw - r.paper_ptot_uw) / r.paper_ptot_uw;
            assert!(rel.abs() < 0.02, "{}: ptot rel {rel}", r.name);
        }
    }

    #[test]
    fn table1_parallel_matches_serial_for_any_worker_count() {
        let serial = table1().unwrap();
        for workers in [1, 2, 8] {
            let par = table1_parallel(Workers::Fixed(workers)).unwrap();
            assert_eq!(par, serial, "workers = {workers}");
        }
    }

    #[test]
    fn table1_eq13_errors_match_paper_sign_and_magnitude() {
        for r in table1().unwrap() {
            // The paper's headline: |err| < 3% everywhere. Ours obeys
            // the same bound (slightly different split rounding).
            assert!(r.our_err_pct.abs() < 3.5, "{}: {}", r.name, r.our_err_pct);
        }
    }

    #[test]
    fn table1_subset_rows_are_bit_identical_to_the_full_table() {
        let full = table1().unwrap();
        let names: Vec<String> = ["Seq4_16", "RCA", "Wallace par4"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let subset = table1_subset_parallel(&names, Workers::Fixed(2)).unwrap();
        assert_eq!(subset.len(), 3);
        for (name, row) in names.iter().zip(&subset) {
            let reference = full.iter().find(|r| &r.name == name).unwrap();
            assert_eq!(row, reference, "{name}");
        }
        // The full name list reproduces the full table exactly.
        let all: Vec<String> = table1_names().iter().map(|s| s.to_string()).collect();
        assert_eq!(table1_subset_parallel(&all, Workers::Auto).unwrap(), full);
    }

    #[test]
    fn table3_and_4_reproduce_totals() {
        for rows in [table3().unwrap(), table4().unwrap()] {
            assert_eq!(rows.len(), 3);
            for r in &rows {
                let rel = (r.our_ptot_uw - r.paper_ptot_uw) / r.paper_ptot_uw;
                assert!(rel.abs() < 0.01, "{}: {rel}", r.name);
                assert!((r.our_vdd - r.paper_vdd).abs() < 0.005, "{}", r.name);
                assert!(r.our_err_pct.abs() < 3.5, "{}", r.name);
            }
        }
    }

    #[test]
    fn flavor_comparison_ll_wins() {
        // Section 5: LL beats both ULL and HS for every Wallace variant.
        let ll = table1().unwrap();
        let ull = table3().unwrap();
        let hs = table4().unwrap();
        for (i, ull_row) in ull.iter().enumerate() {
            let ll_row = &ll[7 + i];
            assert!(ll_row.our_ptot_uw < ull_row.our_ptot_uw, "LL < ULL at {i}");
            assert!(ll_row.our_ptot_uw < hs[i].our_ptot_uw, "LL < HS at {i}");
        }
        // On HS parallelisation hurts; on ULL par4 overshoots par2.
        assert!(hs[1].our_ptot_uw > hs[0].our_ptot_uw);
        assert!(ull[2].our_ptot_uw > ull[1].our_ptot_uw);
    }

    #[test]
    fn table2_renders_three_flavors() {
        let t = table2();
        assert_eq!(t.len(), 3);
        let s = t.to_string();
        assert!(s.contains("ULL") && s.contains("LL") && s.contains("HS"));
    }

    #[test]
    fn render_contains_all_architectures() {
        let s = render_rows("Table 1", &table1().unwrap());
        for row in &TABLE1 {
            assert!(s.contains(row.name), "{}", row.name);
        }
    }
}
