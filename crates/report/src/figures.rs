//! Figure reproductions: the Ptot-vs-Vdd curves (Fig. 1), the
//! linearisation plot (Fig. 2), and the pipeline structure summaries
//! (Figs. 3/4).

use optpower::calibrate::{build_model, from_breakdown};
use optpower::reference::{table1_arch_params, PAPER_FREQUENCY, TABLE1};
use optpower::sweep::log_frequency_axis;
use optpower::{ArchParams, ModelError, OperatingPoint};
use optpower_explore::{explore, ExploreConfig, Grid, ResultSet, Workers};
use optpower_mult::{rca_pipelined, PipelineStyle};
use optpower_netlist::{Library, Netlist};
use optpower_sim::{measure_activity, Engine};
use optpower_sta::TimingAnalysis;
use optpower_tech::{Flavor, Linearization, Technology};
use optpower_units::{Farads, Hertz, SquareMicrons, Volts, Watts};

use crate::render::{fnum, Table};

/// One activity's curve in Figure 1.
#[derive(Debug, Clone)]
pub struct Figure1Curve {
    /// The cell activity of this curve.
    pub activity: f64,
    /// `(Vdd, Ptot)` samples along the timing-closure curve.
    pub points: Vec<(f64, f64)>,
    /// The optimal working point (the figure's cross marks).
    pub optimum: OperatingPoint,
    /// The `Pdyn/Pstat` ratio annotated at the optimum.
    pub dyn_static_ratio: f64,
}

/// The Figure 1 dataset: Ptot vs Vdd for the 16-bit RCA at several
/// activities.
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// One curve per activity, highest activity first.
    pub curves: Vec<Figure1Curve>,
}

/// Regenerates Figure 1: the calibrated RCA multiplier swept along its
/// timing-closure curve at activity `a₀·{1, ½, ⅒, 1⁄100}`.
///
/// The paper's observations hold on the returned data: lower activity
/// lowers `Ptot` while *raising* the optimal `Vdd` and `Vth`.
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or solving.
pub fn figure1(samples_per_curve: usize) -> Result<Figure1, ModelError> {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    let rca = &TABLE1[0];
    let cal = from_breakdown(
        &tech,
        Volts::new(rca.vdd),
        Volts::new(rca.vth),
        Watts::new(rca.pdyn_uw * 1e-6),
        Watts::new(rca.pstat_uw * 1e-6),
        f64::from(rca.cells),
        rca.activity,
        PAPER_FREQUENCY,
    )?;
    let base_arch = ArchParams::builder(rca.name)
        .cells(rca.cells)
        .activity(rca.activity)
        .logical_depth(rca.ld_eff)
        .cap_per_cell(Farads::new(1e-15))
        .area(SquareMicrons::new(rca.area_um2))
        .build()?;
    let mut curves = Vec::new();
    for factor in [1.0, 0.5, 0.1, 0.01] {
        let arch = base_arch.clone().with_activity(rca.activity * factor)?;
        let model = build_model(tech, arch, PAPER_FREQUENCY, cal)?;
        let optimum = model.optimize()?;
        let points = model
            .sweep_curve(Volts::new(0.2), Volts::new(1.2), samples_per_curve)
            .into_iter()
            .map(|(v, p)| (v.value(), p.total().value()))
            .collect();
        curves.push(Figure1Curve {
            activity: rca.activity * factor,
            points,
            dyn_static_ratio: optimum.breakdown().dyn_static_ratio(),
            optimum,
        });
    }
    Ok(Figure1 { curves })
}

/// Renders the Figure 1 optima as a table (the series themselves are
/// CSV-ready in [`Figure1`]).
pub fn render_figure1(fig: &Figure1) -> String {
    let mut t = Table::new(&[
        "activity",
        "Vdd* [V]",
        "Vth* [V]",
        "Ptot* [uW]",
        "Pdyn/Pstat",
    ]);
    for c in &fig.curves {
        t.row(&[
            fnum(c.activity, 4),
            fnum(c.optimum.vdd().value(), 3),
            fnum(c.optimum.vth().value(), 3),
            fnum(c.optimum.ptot().value() * 1e6, 2),
            fnum(c.dyn_static_ratio, 2),
        ]);
    }
    format!("Figure 1 - optimal points of the 16-bit RCA vs activity\n{t}")
}

/// The Figure 2 dataset: `Vdd^{1/α}` against its linear fit.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// The fitted linearisation (A, B, range, max error).
    pub fit: Linearization,
    /// `(Vdd, exact, approx)` samples.
    pub points: Vec<(f64, f64, f64)>,
}

/// Regenerates Figure 2 (`α = 1.5`, Vdd ∈ [0.3, 0.9] as plotted).
///
/// # Errors
///
/// Propagates numeric errors from the fit (unreachable for valid α).
pub fn figure2(samples: usize) -> Result<Figure2, ModelError> {
    let lo = Volts::new(0.3);
    let hi = Volts::new(0.9);
    let fit = Linearization::fit(1.5, lo, hi)?;
    let points = optpower_numeric::linspace(lo.value(), hi.value(), samples.max(2))
        .into_iter()
        .map(|v| {
            let vv = Volts::new(v);
            (v, fit.exact(vv), fit.approx(vv))
        })
        .collect();
    Ok(Figure2 { fit, points })
}

/// Renders the Figure 2 fit summary.
pub fn render_figure2(fig: &Figure2) -> String {
    format!(
        "Figure 2 - Vdd^(1/alpha) linearisation, alpha = {}\n\
         A = {:.4}, B = {:.4}, max |error| = {:.4} over [{:.2}, {:.2}] V\n\
         ({} samples available for plotting)",
        fig.fit.alpha(),
        fig.fit.a(),
        fig.fit.b(),
        fig.fit.max_error(),
        fig.fit.lo().value(),
        fig.fit.hi().value(),
        fig.points.len(),
    )
}

/// Structural summary of one pipelined array (Figures 3/4 analogue).
#[derive(Debug, Clone)]
pub struct StageSummary {
    /// `"horizontal"` or `"diagonal"`.
    pub style: &'static str,
    /// Stage count.
    pub stages: u32,
    /// Flip-flops inserted by the pipeline cuts.
    pub registers: usize,
    /// Critical path in gate units (the effective LD).
    pub logical_depth: f64,
    /// Global path-delay spread (max − min endpoint arrival).
    pub path_spread: f64,
    /// Mean input-arrival skew over multi-input cells.
    pub mean_input_skew: f64,
    /// Timed (glitch-counting) activity from random stimulus.
    pub activity_timed: f64,
    /// Zero-delay (glitch-free) activity from the same stimulus.
    pub activity_zero_delay: f64,
}

impl StageSummary {
    /// The glitch amplification factor `a_timed / a_zero_delay`.
    pub fn glitch_factor(&self) -> f64 {
        self.activity_timed / self.activity_zero_delay
    }
}

/// The Figures 3/4 dataset: horizontal vs diagonal pipeline structure
/// and glitch statistics at 2 and 4 stages.
#[derive(Debug, Clone)]
pub struct Figure34 {
    /// Operand width used.
    pub width: usize,
    /// One summary per (style, stages) combination.
    pub summaries: Vec<StageSummary>,
}

/// Regenerates the Figures 3/4 comparison on `width`-bit arrays.
///
/// `items` random operand pairs are used for the activity measurement;
/// the paper's qualitative claim — diagonal cuts yield shorter LD but
/// higher (glitch) activity than horizontal cuts — is visible in the
/// returned summaries.
///
/// # Errors
///
/// Propagates netlist validation errors (unreachable for valid widths).
pub fn figure34(width: usize, items: u64) -> Result<Figure34, optpower_netlist::NetlistError> {
    let lib = Library::cmos13();
    let mut summaries = Vec::new();
    for (style, name) in [
        (PipelineStyle::Horizontal, "horizontal"),
        (PipelineStyle::Diagonal, "diagonal"),
    ] {
        for stages in [2u32, 4] {
            let nl: Netlist = rca_pipelined(width, stages, style)?;
            let sta = TimingAnalysis::analyze(&nl, &lib);
            // cmos13 delays are validated and pipelined arrays are
            // loop-free, so the timed engine cannot fail here.
            let timed = measure_activity(&nl, &lib, Engine::Timed, items, 1, 4, 7)
                .expect("valid library and acyclic netlist");
            let zd = measure_activity(&nl, &lib, Engine::ZeroDelay, items, 1, 4, 7)
                .expect("zero-delay measurement cannot fail");
            summaries.push(StageSummary {
                style: name,
                stages,
                registers: nl.dff_count(),
                logical_depth: sta.logical_depth(),
                path_spread: sta.path_spread(),
                mean_input_skew: sta.mean_input_skew(),
                activity_timed: timed.activity,
                activity_zero_delay: zd.activity,
            });
        }
    }
    Ok(Figure34 { width, summaries })
}

/// Renders the Figures 3/4 structural comparison.
pub fn render_figure34(fig: &Figure34) -> String {
    let mut t = Table::new(&[
        "pipeline",
        "stages",
        "DFFs",
        "LD",
        "spread",
        "skew",
        "a(timed)",
        "a(0-delay)",
        "glitch x",
    ]);
    for s in &fig.summaries {
        t.row(&[
            s.style.to_string(),
            s.stages.to_string(),
            s.registers.to_string(),
            fnum(s.logical_depth, 1),
            fnum(s.path_spread, 1),
            fnum(s.mean_input_skew, 2),
            fnum(s.activity_timed, 4),
            fnum(s.activity_zero_delay, 4),
            fnum(s.glitch_factor(), 2),
        ]);
    }
    format!(
        "Figures 3/4 - horizontal vs diagonal pipelining of the {}-bit RCA\n{t}",
        fig.width
    )
}

/// The Ptot-vs-frequency Pareto figure: a design-space exploration
/// over the calibrated Table 1 architectures, all three STM CMOS09
/// flavours and a log frequency axis, plus the extracted
/// (throughput ↑, power ↓) Pareto front.
#[derive(Debug, Clone)]
pub struct ParetoFigure {
    /// The explored design space, in grid order.
    pub result: ResultSet,
    /// The swept frequency axis.
    pub frequencies: Vec<Hertz>,
}

impl ParetoFigure {
    /// `(frequency_hz, tech, arch, ptot_w)` of every front point, by
    /// ascending frequency.
    pub fn front_points(&self) -> Vec<(f64, &'static str, String, f64)> {
        self.result
            .pareto_front()
            .into_iter()
            .map(|r| {
                let opt = r.optimum().expect("front members are closed");
                (
                    r.frequency.value(),
                    r.tech,
                    r.arch.clone(),
                    opt.ptot().value(),
                )
            })
            .collect()
    }
}

/// Runs the Pareto sweep: the thirteen calibrated Table 1
/// architectures × all three flavours × `freq_points` log-spaced
/// frequencies in `[1 MHz, 250 MHz]` on the exploration engine.
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or an invalid axis.
pub fn figure_pareto(freq_points: usize, workers: Workers) -> Result<ParetoFigure, ModelError> {
    let frequencies = log_frequency_axis(Hertz::new(1e6), Hertz::new(250e6), freq_points)?;
    let grid = Grid::builder()
        .technologies(Flavor::ALL.iter().map(|&fl| Technology::stm_cmos09(fl)))
        .architectures(table1_arch_params()?)
        .frequencies(frequencies.iter().copied())
        .build()
        .expect("all three axes are non-empty and validated");
    let config = ExploreConfig {
        workers,
        ..ExploreConfig::default()
    };
    Ok(ParetoFigure {
        result: explore(&grid, &config),
        frequencies,
    })
}

/// Renders the Pareto figure: an ASCII log-log scatter (front points
/// `*`, dominated closed points `.`) above the front table.
pub fn render_pareto(fig: &ParetoFigure) -> String {
    const COLS: usize = 64;
    const ROWS: usize = 16;
    // Computed once and shared by the scatter and the table below.
    let front = fig.result.pareto_front();
    let closed: Vec<(f64, f64, bool)> = fig
        .result
        .records()
        .iter()
        .filter_map(|r| {
            r.optimum().map(|o| {
                let on_front = front.iter().any(|f| std::ptr::eq(*f, r));
                (r.frequency.value(), o.ptot().value(), on_front)
            })
        })
        .collect();
    let mut out = String::from(
        "Pareto figure - optimal Ptot vs throughput over the explored design space\n\
         (log-log; '*' Pareto front, '.' dominated closed points)\n",
    );
    if closed.is_empty() {
        out.push_str("(no closed points)\n");
        return out;
    }
    let (mut fmin, mut fmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut pmin, mut pmax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(f, p, _) in &closed {
        fmin = fmin.min(f);
        fmax = fmax.max(f);
        pmin = pmin.min(p);
        pmax = pmax.max(p);
    }
    let fspan = (fmax.log10() - fmin.log10()).max(f64::MIN_POSITIVE);
    let pspan = (pmax.log10() - pmin.log10()).max(f64::MIN_POSITIVE);
    let mut canvas = vec![vec![b' '; COLS]; ROWS];
    for &(f, p, on_front) in &closed {
        let x = ((f.log10() - fmin.log10()) / fspan * (COLS - 1) as f64).round() as usize;
        let y = ((pmax.log10() - p.log10()) / pspan * (ROWS - 1) as f64).round() as usize;
        let cell = &mut canvas[y.min(ROWS - 1)][x.min(COLS - 1)];
        if on_front {
            *cell = b'*';
        } else if *cell == b' ' {
            *cell = b'.';
        }
    }
    for (i, row) in canvas.into_iter().enumerate() {
        let label = if i == 0 {
            format!("{:>9.2} uW", pmax * 1e6)
        } else if i == ROWS - 1 {
            format!("{:>9.2} uW", pmin * 1e6)
        } else {
            " ".repeat(12)
        };
        out.push_str(&format!(
            "{label} |{}\n",
            String::from_utf8(row).expect("ascii canvas")
        ));
    }
    out.push_str(&format!(
        "{} +{}\n{:>18.2} MHz{:>width$.2} MHz\n",
        " ".repeat(12),
        "-".repeat(COLS),
        fmin / 1e6,
        fmax / 1e6,
        width = COLS - 6
    ));
    let mut t = Table::new(&[
        "f [MHz]",
        "tech",
        "arch",
        "Vdd [V]",
        "Vth [V]",
        "Ptot [uW]",
        "E/op [pJ]",
    ]);
    for r in front {
        let opt = r.optimum().expect("front members are closed");
        t.row(&[
            fnum(r.frequency.value() / 1e6, 2),
            r.tech.to_string(),
            r.arch.clone(),
            fnum(opt.vdd().value(), 3),
            fnum(opt.vth().value(), 3),
            fnum(opt.ptot().value() * 1e6, 2),
            fnum(opt.energy_per_item(r.frequency) * 1e12, 3),
        ]);
    }
    out.push_str(&format!("Pareto front (throughput up, power down)\n{t}"));
    out
}

/// Exports the Pareto front as CSV
/// (`frequency_hz,tech,arch,vdd_v,vth_v,ptot_w,energy_per_op_j`).
pub fn pareto_front_csv(fig: &ParetoFigure) -> String {
    let mut out = String::from("frequency_hz,tech,arch,vdd_v,vth_v,ptot_w,energy_per_op_j\n");
    for r in fig.result.pareto_front() {
        let opt = r.optimum().expect("front members are closed");
        out.push_str(&format!(
            "{:e},{},{},{:e},{:e},{:e},{:e}\n",
            r.frequency.value(),
            r.tech,
            r.arch,
            opt.vdd().value(),
            opt.vth().value(),
            opt.ptot().value(),
            opt.energy_per_item(r.frequency),
        ));
    }
    out
}

/// Pearson correlation coefficient of paired samples, used by the
/// static-vs-measured glitch artifact (`optpower sta`) to quantify how
/// well the static bound tracks the simulated glitch factor across
/// architectures — the paper's Section-4 claim, reduced to one number.
///
/// Returns `None` for fewer than two pairs or zero variance on either
/// axis (the coefficient is undefined there, not 0 or 1).
pub fn pearson_correlation(pairs: &[(f64, f64)]) -> Option<f64> {
    let n = pairs.len();
    if n < 2 {
        return None;
    }
    let nf = n as f64;
    let (mx, my) = pairs
        .iter()
        .fold((0.0, 0.0), |(sx, sy), &(x, y)| (sx + x, sy + y));
    let (mx, my) = (mx / nf, my / nf);
    let (mut sxx, mut syy, mut sxy) = (0.0, 0.0, 0.0);
    for &(x, y) in pairs {
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
        sxy += (x - mx) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        return None;
    }
    Some(sxy / (sxx * syy).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_basics() {
        // Perfectly linear: r = 1; anti-linear: r = -1.
        let up: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 2.0 + 3.0 * i as f64)).collect();
        assert!((pearson_correlation(&up).unwrap() - 1.0).abs() < 1e-12);
        let down: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, -(i as f64))).collect();
        assert!((pearson_correlation(&down).unwrap() + 1.0).abs() < 1e-12);
        // Degenerate inputs have no defined coefficient.
        assert_eq!(pearson_correlation(&[(1.0, 2.0)]), None);
        assert_eq!(pearson_correlation(&[(1.0, 2.0), (1.0, 5.0)]), None);
    }

    #[test]
    fn figure1_reproduces_activity_trends() {
        let fig = figure1(64).unwrap();
        assert_eq!(fig.curves.len(), 4);
        // Lower activity: lower Ptot, higher Vdd*, higher Vth*.
        for pair in fig.curves.windows(2) {
            let (hi_a, lo_a) = (&pair[0], &pair[1]);
            assert!(lo_a.activity < hi_a.activity);
            assert!(lo_a.optimum.ptot().value() < hi_a.optimum.ptot().value());
            assert!(lo_a.optimum.vdd() > hi_a.optimum.vdd());
            assert!(lo_a.optimum.vth() > hi_a.optimum.vth());
        }
    }

    #[test]
    fn figure1_optimum_is_on_its_curve() {
        let fig = figure1(512).unwrap();
        for c in &fig.curves {
            let min_curve = c
                .points
                .iter()
                .map(|&(_, p)| p)
                .fold(f64::INFINITY, f64::min);
            let opt = c.optimum.ptot().value();
            assert!(
                opt <= min_curve * 1.0001,
                "opt {opt} vs curve min {min_curve}"
            );
        }
    }

    #[test]
    fn figure1_ratio_annotation_positive() {
        let fig = figure1(32).unwrap();
        for c in &fig.curves {
            assert!(c.dyn_static_ratio > 1.0, "dyn should dominate at optimum");
        }
    }

    #[test]
    fn figure2_matches_linearization_module() {
        let fig = figure2(301).unwrap();
        assert_eq!(fig.points.len(), 301);
        for &(_, exact, approx) in &fig.points {
            assert!((exact - approx).abs() <= fig.fit.max_error() + 1e-12);
        }
    }

    #[test]
    fn figure34_diagonal_trades_depth_for_glitches() {
        // 8-bit arrays keep the test fast; the paper's Figs 3/4 are
        // also drawn at 8 bits.
        let fig = figure34(8, 60).unwrap();
        let get = |style: &str, stages: u32| {
            fig.summaries
                .iter()
                .find(|s| s.style == style && s.stages == stages)
                .expect("summary must exist")
                .clone()
        };
        for stages in [2u32, 4] {
            let h = get("horizontal", stages);
            let d = get("diagonal", stages);
            // Diagonal cuts the critical path deeper...
            assert!(d.logical_depth < h.logical_depth, "stages {stages}");
            // ...at the price of more glitch activity.
            assert!(
                d.activity_timed > h.activity_timed,
                "stages {stages}: diag {} vs hor {}",
                d.activity_timed,
                h.activity_timed
            );
        }
    }

    #[test]
    fn renders_are_non_empty() {
        let f1 = figure1(16).unwrap();
        assert!(render_figure1(&f1).contains("Figure 1"));
        let f2 = figure2(16).unwrap();
        assert!(render_figure2(&f2).contains("alpha"));
    }

    #[test]
    fn pareto_figure_front_is_monotone_and_worker_invariant() {
        let fig = figure_pareto(5, Workers::Fixed(1)).unwrap();
        assert_eq!(fig.frequencies.len(), 5);
        assert_eq!(fig.result.len(), 3 * 13 * 5);
        let front = fig.front_points();
        assert!(!front.is_empty());
        // Ascending frequency implies ascending power along the front.
        for pair in front.windows(2) {
            assert!(pair[0].0 < pair[1].0);
            assert!(pair[0].3 < pair[1].3);
        }
        // Scheduling never changes the figure.
        let par = figure_pareto(5, Workers::Fixed(8)).unwrap();
        assert_eq!(par.result, fig.result);
    }

    #[test]
    fn pareto_renders_scatter_and_table() {
        let fig = figure_pareto(4, Workers::Auto).unwrap();
        let s = render_pareto(&fig);
        assert!(s.contains("Pareto front"));
        assert!(s.contains('*'), "front points plotted:\n{s}");
        assert!(s.contains("MHz"));
        let csv = pareto_front_csv(&fig);
        assert!(csv.starts_with("frequency_hz,tech,arch"));
        assert_eq!(csv.lines().count(), 1 + fig.front_points().len());
    }

    #[test]
    fn pareto_empty_result_set_renders_placeholder() {
        let fig = ParetoFigure {
            result: ResultSet::default(),
            frequencies: Vec::new(),
        };
        assert!(render_pareto(&fig).contains("no closed points"));
        assert_eq!(pareto_front_csv(&fig).lines().count(), 1);
    }
}
