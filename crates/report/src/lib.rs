//! Experiment harness: regenerates every table and figure of
//! Schuster et al. (DATE 2006) and the ab-initio / ablation studies.
//!
//! Each experiment is a pure function returning a data structure, plus
//! a `render_*` helper producing the console table. Thin binaries under
//! `src/bin/` print them:
//!
//! | paper artefact | function | binary |
//! |---|---|---|
//! | Table 1 (13 multipliers, LL) | [`table1`] | `table1` |
//! | Table 2 (flavour parameters) | [`table2`] | `table2` |
//! | Table 3 (Wallace, ULL) | [`table3`] | `table3` |
//! | Table 4 (Wallace, HS) | [`table4`] | `table4` |
//! | Figure 1 (Ptot vs Vdd per activity) | [`figure1`] | `figure1` |
//! | Figure 2 (Vdd^{1/α} linearisation) | [`figure2`] | `figure2` |
//! | Figures 3/4 (pipeline structures) | [`figure34`] | `figure34` |
//! | Table 1′ (ab-initio netlist flow) | [`ab_initio_table`] | `ab_initio` |
//! | Ablations | [`ablation`] module | `ablation` |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod abinitio;
pub mod ablation;
mod calibrated;
pub mod extended;
mod figures;
mod render;

pub use abinitio::{
    ab_initio_table, characterize_all_parallel, characterize_architecture,
    characterize_architecture_with, characterize_design_with, characterize_parallel,
    characterize_parallel_with, glitch_aware_sweep, glitch_rows_to_csv, glitch_rows_to_json,
    glitch_sweep_from_rows, measured_arch_params, render_ab_initio, render_glitch_factors,
    AbInitioError, AbInitioRow, ActivitySource, CharacterizeConfig, GlitchSweep, PlaneTiling,
    TIMED_LANES,
};
pub use calibrated::{
    render_rows, table1, table1_names, table1_parallel, table1_subset_parallel, table2, table3,
    table4, RowComparison,
};
pub use figures::{
    figure1, figure2, figure34, figure_pareto, pareto_front_csv, pearson_correlation,
    render_figure1, render_figure2, render_figure34, render_pareto, Figure1, Figure1Curve, Figure2,
    Figure34, ParetoFigure, StageSummary,
};
pub use render::Table;
