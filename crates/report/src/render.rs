//! Minimal fixed-width console table renderer.

use core::fmt;

/// A console table with a header row and uniform column padding.
///
/// # Examples
///
/// ```
/// use optpower_report::Table;
/// let mut t = Table::new(&["arch", "Ptot [uW]"]);
/// t.row(&["RCA", "191.44"]);
/// let s = t.to_string();
/// assert!(s.contains("RCA"));
/// assert!(s.contains("Ptot"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: &[impl AsRef<str>]) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, cell) in cells.iter().enumerate() {
                if i == 0 {
                    // First column left-aligned (names).
                    write!(f, "{cell:<width$}", width = widths[i])?;
                } else {
                    write!(f, "  {cell:>width$}", width = widths[i])?;
                }
            }
            writeln!(f)
        };
        write_row(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a float with `digits` decimals (shared by all reports).
pub(crate) fn fnum(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "x"]);
        t.row(&["a", "1.0"]).row(&["long-name", "23.45"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // header, rule, 2 rows
        assert!(lines[0].starts_with("name"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric column right-aligned: both data lines end on digits.
        assert!(lines[2].ends_with("1.0"));
        assert!(lines[3].ends_with("23.45"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only-one"]);
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(&["a"]);
        assert!(t.is_empty());
        t.row(&["x"]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn fnum_digits() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(-0.5, 3), "-0.500");
    }
}
