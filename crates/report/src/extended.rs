//! Extended studies beyond the paper's printed artefacts:
//!
//! * [`scaling_study`] — the paper's closing remark ("a smaller
//!   technology node with ultra-high speed and large leakage might
//!   consume more than a larger techno ... at its optimal working
//!   point") evaluated over synthetic scaled nodes and a frequency
//!   range,
//! * [`sensitivity_report`] — logarithmic sensitivities of Eq. 13 for
//!   every Table 1 architecture (the quantitative version of
//!   Section 4's reasoning).

use optpower::calibrate::{build_model, from_breakdown};
use optpower::reference::{Table1Row, PAPER_FREQUENCY, TABLE1};
use optpower::sweep::rank_technologies;
use optpower::{ArchParams, ModelError, Sensitivities};
use optpower_explore::{par_map, Workers};
use optpower_tech::{Flavor, ScaledNode, Technology};
use optpower_units::{Farads, Hertz, SquareMicrons, Volts, Watts};

use crate::render::{fnum, Table};

/// One frequency row of the scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// Evaluated frequency \[MHz\].
    pub f_mhz: f64,
    /// `(node label, optimal Ptot \[µW\])` per node; NaN when timing
    /// cannot close.
    pub ptot_uw: Vec<(&'static str, f64)>,
    /// The cheapest node at this frequency, if any closed timing.
    pub winner: Option<&'static str>,
}

/// Evaluates the basic Wallace architecture across the synthetic
/// scaled nodes and a frequency range.
///
/// With `scale_capacitance = true`, per-cell capacitance shrinks ×0.7
/// per node ("the same RTL ported with full gate-capacitance
/// scaling"): under the paper's freely-adjustable-Vth assumption the
/// leakage penalty is only logarithmic (`n·Ut·ln Io` in the Eq. 13
/// bracket), so the smaller node wins everywhere — by a margin that
/// collapses at low frequency.
///
/// With `scale_capacitance = false` ("wire-dominated port": the
/// switched capacitance does not improve), the paper's cautionary
/// closing remark materialises as an actual crossover: the large,
/// balanced node wins at low frequency and the ultra-leaky small node
/// only pays off once the timing constraint tightens.
///
/// # Errors
///
/// Propagates [`ModelError`] from model building.
pub fn scaling_study(
    frequencies_mhz: &[f64],
    scale_capacitance: bool,
) -> Result<Vec<ScalingRow>, ModelError> {
    frequencies_mhz
        .iter()
        .map(|&f_mhz| scaling_row(f_mhz, scale_capacitance))
        .collect()
}

/// [`scaling_study`] with each frequency row evaluated on its own
/// worker. Produces the same rows in the same order for any worker
/// policy.
///
/// # Errors
///
/// Propagates [`ModelError`] from model building.
pub fn scaling_study_parallel(
    frequencies_mhz: &[f64],
    scale_capacitance: bool,
    workers: Workers,
) -> Result<Vec<ScalingRow>, ModelError> {
    par_map(
        frequencies_mhz,
        workers.resolve(frequencies_mhz.len()),
        |&f_mhz| scaling_row(f_mhz, scale_capacitance),
    )
    .into_iter()
    .collect()
}

/// Evaluates one frequency row of the scaling study — the unit of work
/// shared by the serial and parallel paths.
fn scaling_row(f_mhz: f64, scale_capacitance: bool) -> Result<ScalingRow, ModelError> {
    // Wallace structure with the LL-calibrated per-cell capacitance.
    let c130 = 56.69e-6 / (729.0 * 0.2976 * 31.25e6 * 0.372 * 0.372);
    let cap_for = |node: ScaledNode| match (scale_capacitance, node) {
        (_, ScaledNode::Node130) => c130,
        (true, ScaledNode::Node90) => c130 * 0.7,
        (true, ScaledNode::Node65) => c130 * 0.49,
        (false, _) => c130,
    };
    let f = Hertz::new(f_mhz * 1e6);
    let mut ptot_uw = Vec::new();
    let mut winner: Option<(&'static str, f64)> = None;
    for node in ScaledNode::ALL {
        let tech = node.technology().expect("presets are valid");
        let arch = ArchParams::builder("Wallace")
            .cells(729)
            .activity(0.2976)
            .logical_depth(17.0)
            .cap_per_cell(Farads::new(cap_for(node)))
            .build()?;
        let ranking = rank_technologies(&[tech], &arch, f);
        let p = ranking
            .ranking
            .first()
            .map(|&(_, p)| p * 1e6)
            .unwrap_or(f64::NAN);
        if p.is_finite() && winner.is_none_or(|(_, best)| p < best) {
            winner = Some((node.label(), p));
        }
        ptot_uw.push((node.label(), p));
    }
    Ok(ScalingRow {
        f_mhz,
        ptot_uw,
        winner: winner.map(|(n, _)| n),
    })
}

/// Renders the scaling study.
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut t = Table::new(&["f [MHz]", "130nm [uW]", "90nm [uW]", "65nm [uW]", "winner"]);
    for r in rows {
        let p = |label: &str| {
            r.ptot_uw
                .iter()
                .find(|(l, _)| *l == label)
                .map(|&(_, v)| if v.is_nan() { "-".into() } else { fnum(v, 2) })
                .unwrap_or_else(|| "-".into())
        };
        t.row(&[
            fnum(r.f_mhz, 2),
            p("130nm"),
            p("90nm"),
            p("65nm"),
            r.winner.unwrap_or("-").to_string(),
        ]);
    }
    format!(
        "Scaling study - basic Wallace ported across synthetic nodes\n\
         (the paper's closing remark: leaky small nodes lose at low f)\n{t}"
    )
}

/// One architecture's Eq. 13 sensitivities.
#[derive(Debug, Clone, PartialEq)]
pub struct SensitivityRow {
    /// Architecture name.
    pub name: &'static str,
    /// The computed sensitivities.
    pub sens: Sensitivities,
}

/// Computes the logarithmic Eq. 13 sensitivities for every Table 1
/// architecture on its calibrated model.
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or the closed form.
pub fn sensitivity_report() -> Result<Vec<SensitivityRow>, ModelError> {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    TABLE1
        .iter()
        .map(|row| sensitivity_row(&tech, row))
        .collect()
}

/// [`sensitivity_report`] with each architecture calibrated and
/// differentiated on its own worker. Produces the same rows in the
/// same order for any worker policy.
///
/// # Errors
///
/// Propagates [`ModelError`] from calibration or the closed form.
pub fn sensitivity_report_parallel(workers: Workers) -> Result<Vec<SensitivityRow>, ModelError> {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    par_map(&TABLE1, workers.resolve(TABLE1.len()), |row| {
        sensitivity_row(&tech, row)
    })
    .into_iter()
    .collect()
}

/// Calibrates one Table 1 row and computes its Eq. 13 sensitivities —
/// the unit of work shared by the serial and parallel paths.
fn sensitivity_row(tech: &Technology, row: &Table1Row) -> Result<SensitivityRow, ModelError> {
    let cal = from_breakdown(
        tech,
        Volts::new(row.vdd),
        Volts::new(row.vth),
        Watts::new(row.pdyn_uw * 1e-6),
        Watts::new(row.pstat_uw * 1e-6),
        f64::from(row.cells),
        row.activity,
        PAPER_FREQUENCY,
    )?;
    let arch = ArchParams::builder(row.name)
        .cells(row.cells)
        .activity(row.activity)
        .logical_depth(row.ld_eff)
        .cap_per_cell(Farads::new(1e-15))
        .area(SquareMicrons::new(row.area_um2))
        .build()?;
    let model = build_model(*tech, arch, PAPER_FREQUENCY, cal)?;
    let sens = Sensitivities::at(&model)?;
    Ok(SensitivityRow {
        name: row.name,
        sens,
    })
}

/// Renders the sensitivity report.
pub fn render_sensitivities(rows: &[SensitivityRow]) -> String {
    let mut t = Table::new(&["arch", "S_a", "S_N", "S_LD", "S_f", "S_Io"]);
    for r in rows {
        t.row(&[
            r.name.to_string(),
            fnum(r.sens.activity, 3),
            fnum(r.sens.cells, 3),
            fnum(r.sens.logical_depth, 3),
            fnum(r.sens.frequency, 3),
            fnum(r.sens.io, 3),
        ]);
    }
    format!(
        "Eq. 13 logarithmic sensitivities per architecture\n\
         (S_x = % power change per % parameter change at the optimum)\n{t}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unscaled_port_reproduces_papers_cautionary_remark() {
        // Wire-dominated port: same switched capacitance per node.
        let rows = scaling_study(&[1.0, 250.0], false).unwrap();
        // At 1 MHz the leaky small node loses to the balanced 130 nm.
        assert_eq!(rows[0].winner, Some("130nm"), "{:?}", rows[0]);
        // At 250 MHz speed wins.
        assert_eq!(rows[1].winner, Some("65nm"), "{:?}", rows[1]);
    }

    #[test]
    fn scaled_port_margin_collapses_at_low_frequency() {
        // Full capacitance scaling: the small node always wins under
        // free-Vth (leakage costs only ~n·Ut·ln Io), but its advantage
        // shrinks dramatically at low f.
        let rows = scaling_study(&[1.0, 250.0], true).unwrap();
        let margin = |r: &ScalingRow| {
            let p130 = r.ptot_uw.iter().find(|(l, _)| *l == "130nm").unwrap().1;
            let p65 = r.ptot_uw.iter().find(|(l, _)| *l == "65nm").unwrap().1;
            p130 / p65
        };
        let low = margin(&rows[0]);
        let high = margin(&rows[1]);
        assert!(low < high, "advantage must grow with f: {low} vs {high}");
        assert!(low < 1.10, "at 1 MHz the nodes are within 10%: {low}");
    }

    #[test]
    fn scaling_renders() {
        let rows = scaling_study(&[31.25], true).unwrap();
        let s = render_scaling(&rows);
        assert!(s.contains("130nm"));
        assert!(s.contains("31.25"));
    }

    #[test]
    fn parallel_studies_match_serial_for_any_worker_count() {
        let freqs = [1.0, 31.25, 250.0];
        let serial_scaling = scaling_study(&freqs, false).unwrap();
        let serial_sens = sensitivity_report().unwrap();
        for workers in [1, 2, 8] {
            assert_eq!(
                scaling_study_parallel(&freqs, false, Workers::Fixed(workers)).unwrap(),
                serial_scaling,
                "scaling, workers = {workers}"
            );
            assert_eq!(
                sensitivity_report_parallel(Workers::Fixed(workers)).unwrap(),
                serial_sens,
                "sensitivity, workers = {workers}"
            );
        }
    }

    #[test]
    fn sensitivities_cover_all_architectures() {
        let rows = sensitivity_report().unwrap();
        assert_eq!(rows.len(), 13);
        for r in &rows {
            assert!((r.sens.cells - 1.0).abs() < 1e-12, "{}", r.name);
            assert!(
                r.sens.activity > 0.0 && r.sens.activity <= 1.0,
                "{}",
                r.name
            );
        }
    }

    #[test]
    fn sequential_is_most_depth_sensitive() {
        // The paper's Section 4: sequential designs are penalised by
        // "a large effective logical depth" — their LD sensitivity
        // must dominate the combinational families'.
        let rows = sensitivity_report().unwrap();
        let s = |name: &str| {
            rows.iter()
                .find(|r| r.name == name)
                .expect("row present")
                .sens
                .logical_depth
        };
        assert!(s("Sequential") > s("RCA"));
        assert!(s("Sequential") > s("Wallace"));
        assert!(s("Seq parallel") > s("Wallace"));
    }

    #[test]
    fn sensitivity_render() {
        let s = render_sensitivities(&sensitivity_report().unwrap());
        assert!(s.contains("S_LD"));
        assert!(s.contains("Sequential"));
    }
}
