//! Exports artefacts for external tools: structural Verilog and a
//! stage-clustered DOT graph for every architecture, plus a VCD trace
//! of the basic RCA — written under `target/optpower-artifacts/`.
use optpower_mult::Architecture;
use optpower_sim::{VcdRecorder, ZeroDelaySim};
use std::fs;
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new("target/optpower-artifacts");
    fs::create_dir_all(dir)?;
    for arch in Architecture::ALL {
        let design = arch.generate(16)?;
        let stem = design.netlist.name().to_string();
        fs::write(
            dir.join(format!("{stem}.v")),
            optpower_netlist::to_verilog(&design.netlist),
        )?;
        fs::write(
            dir.join(format!("{stem}.dot")),
            optpower_netlist::to_dot(&design.netlist, |_| None),
        )?;
    }
    // A short VCD trace of the basic RCA multiplying random operands.
    let design = Architecture::Rca.generate(16)?;
    let mut sim = ZeroDelaySim::new(&design.netlist);
    let mut vcd = VcdRecorder::all_nets(&design.netlist);
    for i in 0..32u64 {
        sim.set_input_bits("a", (i * 2654435761) & 0xFFFF);
        sim.set_input_bits("b", (i * 40503) & 0xFFFF);
        sim.step();
        vcd.sample(&sim);
    }
    fs::write(dir.join("rca.vcd"), vcd.finish())?;
    println!(
        "wrote Verilog/DOT for 13 architectures + rca.vcd to {}",
        dir.display()
    );
    Ok(())
}
