//! Prints Table 2 (the published STM CMOS09 flavour parameters).
fn main() {
    println!("Table 2 - STM CMOS09 technology flavours");
    println!("{}", optpower_report::table2());
}
