//! Prints the Figure 2 reproduction (Vdd^{1/alpha} linearisation) and
//! a CSV of the exact/approximated curves.
fn main() -> Result<(), optpower::ModelError> {
    let fig = optpower_report::figure2(601)?;
    println!("{}", optpower_report::render_figure2(&fig));
    println!("vdd_v,exact,approx");
    for &(v, e, a) in &fig.points {
        println!("{v},{e},{a}");
    }
    Ok(())
}
