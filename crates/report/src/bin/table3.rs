//! Prints the Table 3 reproduction (Wallace family, ULL flavour).
fn main() -> Result<(), optpower::ModelError> {
    let rows = optpower_report::table3()?;
    println!(
        "{}",
        optpower_report::render_rows(
            "Table 3 - Wallace family optimal power, ULL flavour (31.25 MHz)",
            &rows
        )
    );
    Ok(())
}
