//! Prints the technology-scaling study (the paper's closing remark).
fn main() -> Result<(), optpower::ModelError> {
    let freqs = [1.0, 4.0, 31.25, 125.0, 250.0];
    println!("== wire-dominated port (capacitance does not scale) ==");
    let rows = optpower_report::extended::scaling_study(&freqs, false)?;
    println!("{}", optpower_report::extended::render_scaling(&rows));
    println!("== full gate-capacitance scaling (x0.7 per node) ==");
    let rows = optpower_report::extended::scaling_study(&freqs, true)?;
    println!("{}", optpower_report::extended::render_scaling(&rows));
    Ok(())
}
