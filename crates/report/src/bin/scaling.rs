//! Prints the technology-scaling study (the paper's closing remark),
//! evaluating the frequency rows in parallel on the
//! `optpower-explore` worker pool.
use optpower_explore::Workers;

fn main() -> Result<(), optpower::ModelError> {
    let freqs = [1.0, 4.0, 31.25, 125.0, 250.0];
    println!("== wire-dominated port (capacitance does not scale) ==");
    let rows = optpower_report::extended::scaling_study_parallel(&freqs, false, Workers::Auto)?;
    println!("{}", optpower_report::extended::render_scaling(&rows));
    println!("== full gate-capacitance scaling (x0.7 per node) ==");
    let rows = optpower_report::extended::scaling_study_parallel(&freqs, true, Workers::Auto)?;
    println!("{}", optpower_report::extended::render_scaling(&rows));
    Ok(())
}
