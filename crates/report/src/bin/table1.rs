//! Prints the Table 1 reproduction (13 multipliers, LL flavour),
//! calibrating and re-solving the rows in parallel on the
//! `optpower-explore` worker pool.
use optpower_explore::Workers;

fn main() -> Result<(), optpower::ModelError> {
    let rows = optpower_report::table1_parallel(Workers::Auto)?;
    println!(
        "{}",
        optpower_report::render_rows(
            "Table 1 - 16-bit multipliers at the optimal working point (ST LL, 31.25 MHz)\n\
             (p) = paper columns; bare = this reproduction",
            &rows
        )
    );
    Ok(())
}
