//! Prints the ab-initio Table 1' (all parameters measured from our own
//! netlists/simulator; no calibration against the paper).
//!
//! Architectures are characterized in parallel across all cores, with
//! the bit-parallel engine providing the glitch-free baseline.
//!
//! Usage: `ab_initio [--smoke] [--workers N]`
//!
//! * `--smoke` — characterize just one array (RCA) and one sequential
//!   architecture with a reduced stimulus volume; the CI smoke gate.
//! * `--workers N` — pin the worker pool (default: all cores).

use optpower_explore::Workers;
use optpower_mult::Architecture;
use optpower_report::{characterize_parallel, render_ab_initio};
use optpower_tech::Flavor;

fn main() -> Result<(), optpower::ModelError> {
    let mut smoke = false;
    let mut workers = Workers::Auto;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--workers" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs an integer");
                workers = Workers::Fixed(n);
            }
            other => panic!("unknown argument {other:?} (try --smoke / --workers N)"),
        }
    }
    let (archs, items): (&[Architecture], u64) = if smoke {
        (&[Architecture::Rca, Architecture::Sequential], 60)
    } else {
        (&Architecture::ALL, 200)
    };
    let rows = characterize_parallel(archs, Flavor::LowLeakage, items, 42, workers)?;
    println!("{}", render_ab_initio(&rows));
    Ok(())
}
