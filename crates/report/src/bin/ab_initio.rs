//! Prints the ab-initio Table 1' (all parameters measured from our own
//! netlists/simulator; no calibration against the paper).
use optpower_tech::Flavor;
fn main() -> Result<(), optpower::ModelError> {
    let rows = optpower_report::ab_initio_table(Flavor::LowLeakage, 200, 42)?;
    println!("{}", optpower_report::render_ab_initio(&rows));
    Ok(())
}
