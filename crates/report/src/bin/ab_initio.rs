//! Prints the ab-initio Table 1' (all parameters measured from our own
//! netlists/simulator; no calibration against the paper) and, on
//! request, the glitch-aware design-space sweep built from it.
//!
//! Architectures are characterized in parallel across all cores: the
//! bit-parallel engine provides the glitch-free baseline and the
//! pooled event-wheel timed engine the glitch-inclusive activity.
//!
//! Usage: `ab_initio [--smoke] [--workers N] [--glitch-sweep] [--freq-points N]`
//!
//! * `--smoke` — characterize just one array (RCA) and one sequential
//!   architecture with a reduced stimulus volume; the CI smoke gate.
//! * `--workers N` — pin the worker pool (default: all cores).
//! * `--glitch-sweep` — additionally sweep the measured parameters
//!   (glitch-aware vs glitch-free activities) over all three flavours
//!   × a log frequency axis, print the glitch-factor figure, and
//!   write CSV/JSON artefacts under `target/optpower-artifacts/`.
//! * `--freq-points N` — frequency-axis resolution of the sweep
//!   (default 9; 3 with `--smoke`).

use optpower_explore::Workers;
use optpower_mult::Architecture;
use optpower_report::{
    characterize_parallel, glitch_rows_to_csv, glitch_rows_to_json, glitch_sweep_from_rows,
    render_ab_initio, render_glitch_factors,
};
use optpower_tech::Flavor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut smoke = false;
    let mut glitch_sweep = false;
    let mut freq_points: Option<usize> = None;
    let mut workers = Workers::Auto;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--glitch-sweep" => glitch_sweep = true,
            "--freq-points" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--freq-points needs an integer");
                freq_points = Some(n);
            }
            "--workers" => {
                let n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--workers needs an integer");
                workers = Workers::Fixed(n);
            }
            other => panic!(
                "unknown argument {other:?} \
                 (try --smoke / --workers N / --glitch-sweep / --freq-points N)"
            ),
        }
    }
    let (archs, items): (&[Architecture], u64) = if smoke {
        (&[Architecture::Rca, Architecture::Sequential], 60)
    } else {
        (&Architecture::ALL, 200)
    };
    let rows = characterize_parallel(archs, Flavor::LowLeakage, items, 42, workers)?;
    println!("{}", render_ab_initio(&rows));

    if glitch_sweep {
        let points = freq_points.unwrap_or(if smoke { 3 } else { 9 });
        println!("{}", render_glitch_factors(&rows));
        let sweep = glitch_sweep_from_rows(rows, points, workers)?;
        let (ga, gf) = (sweep.glitch_aware.summary(), sweep.glitch_free.summary());
        println!(
            "Glitch-aware sweep: {} points ({} closed); glitch-free: {} closed; \
             design-space glitch cost {:.2} uW over jointly closed points",
            ga.points,
            ga.closed,
            gf.closed,
            sweep.total_glitch_cost_w() * 1e6,
        );
        let dir = std::path::Path::new("target/optpower-artifacts");
        std::fs::create_dir_all(dir)?;
        std::fs::write(
            dir.join("abinitio_glitch.csv"),
            glitch_rows_to_csv(&sweep.rows),
        )?;
        std::fs::write(
            dir.join("abinitio_glitch.json"),
            glitch_rows_to_json(&sweep.rows),
        )?;
        std::fs::write(
            dir.join("sweep_glitch_aware.csv"),
            sweep.glitch_aware.to_csv(),
        )?;
        std::fs::write(
            dir.join("sweep_glitch_aware.json"),
            sweep.glitch_aware.to_json(),
        )?;
        std::fs::write(
            dir.join("sweep_glitch_free.csv"),
            sweep.glitch_free.to_csv(),
        )?;
        std::fs::write(
            dir.join("sweep_glitch_free.json"),
            sweep.glitch_free.to_json(),
        )?;
        println!(
            "wrote glitch characterization + sweep CSV/JSON to {}",
            dir.display()
        );
    }
    Ok(())
}
