//! Prints the three ablation studies (fit range, optimiser, glitches).
use optpower_report::ablation;
fn main() -> Result<(), optpower::ModelError> {
    println!(
        "{}",
        ablation::render_fit_ranges(1.86, &ablation::fit_range_sensitivity(1.86)?)
    );
    println!(
        "{}",
        ablation::render_optimizer(&ablation::optimizer_ablation()?)
    );
    println!(
        "{}",
        ablation::render_glitch(&ablation::glitch_ablation(200, 42)?)
    );
    Ok(())
}
