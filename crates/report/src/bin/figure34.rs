//! Prints the Figures 3/4 reproduction: horizontal vs diagonal
//! pipeline structures with register, depth and glitch statistics.
fn main() -> Result<(), optpower_netlist::NetlistError> {
    let fig = optpower_report::figure34(16, 200)?;
    println!("{}", optpower_report::render_figure34(&fig));
    Ok(())
}
