//! Prints the Eq. 13 sensitivity report for all 13 architectures,
//! calibrating and differentiating each on its own
//! `optpower-explore` worker.
use optpower_explore::Workers;

fn main() -> Result<(), optpower::ModelError> {
    let rows = optpower_report::extended::sensitivity_report_parallel(Workers::Auto)?;
    println!("{}", optpower_report::extended::render_sensitivities(&rows));
    Ok(())
}
