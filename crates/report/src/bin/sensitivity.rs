//! Prints the Eq. 13 sensitivity report for all 13 architectures.
fn main() -> Result<(), optpower::ModelError> {
    let rows = optpower_report::extended::sensitivity_report()?;
    println!("{}", optpower_report::extended::render_sensitivities(&rows));
    Ok(())
}
