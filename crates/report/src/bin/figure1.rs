//! Prints the Figure 1 reproduction (Ptot vs Vdd per activity) and a
//! CSV of the swept curves on stdout.
fn main() -> Result<(), optpower::ModelError> {
    let fig = optpower_report::figure1(256)?;
    println!("{}", optpower_report::render_figure1(&fig));
    println!("vdd_v,activity,ptot_w");
    for curve in &fig.curves {
        for &(v, p) in &curve.points {
            println!("{v},{},{p}", curve.activity);
        }
    }
    Ok(())
}
