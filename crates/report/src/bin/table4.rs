//! Prints the Table 4 reproduction (Wallace family, HS flavour).
fn main() -> Result<(), optpower::ModelError> {
    let rows = optpower_report::table4()?;
    println!(
        "{}",
        optpower_report::render_rows(
            "Table 4 - Wallace family optimal power, HS flavour (31.25 MHz)",
            &rows
        )
    );
    Ok(())
}
