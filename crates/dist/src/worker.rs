//! The worker side of the shard protocol: a TCP listener that
//! executes assigned shard specs through an ordinary
//! [`Runtime`] and streams heartbeats while they run.
//!
//! A worker is deliberately stateless between connections: every
//! shard arrives as a self-contained `optpower-job/v1` spec and
//! executes exactly as `optpower run` would. The only distribution
//! concern it owns is liveness — while a shard computes, the
//! connection carries a [`ShardFrame::Heartbeat`] every
//! [`HEARTBEAT_MS`], so a silent socket always means a dead worker
//! and never a slow job.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use optpower_workload::{ErrorBody, Runtime, ShardFrame, ShardResult};

/// Heartbeat cadence while a shard executes, in milliseconds. The
/// coordinator's per-shard timeout only has to exceed this (plus
/// network slack), not the shard's compute time.
pub const HEARTBEAT_MS: u64 = 100;

/// A spawned worker: its bound address plus the stop switch for the
/// accept loop.
#[derive(Debug)]
pub struct WorkerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
}

impl WorkerHandle {
    /// The address the worker accepts coordinator connections on
    /// (with the ephemeral port resolved).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop. In-flight connections finish their
    /// current shard; no new connections are accepted.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept call; the loop re-checks the flag.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Drop for WorkerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:0`) and serves shards on a detached
/// accept loop — one connection handler thread per coordinator.
/// Returns immediately; use the handle's address to point a
/// coordinator at it. Connections share the runtime's pool and
/// caches, so a shard resubmitted after a coordinator-side retry is
/// an artifact-cache hit.
///
/// # Errors
///
/// [`io::Error`] when the address cannot be bound.
pub fn spawn(addr: impl ToSocketAddrs, runtime: Runtime) -> io::Result<WorkerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let flag = stop.clone();
    thread::spawn(move || accept_loop(&listener, &runtime, &flag));
    Ok(WorkerHandle { addr: local, stop })
}

/// The blocking form behind `optpower worker`: binds `addr` and
/// serves shards until the process ends. Prints the bound address to
/// stderr so scripts (and the CI smoke) can scrape ephemeral ports.
///
/// # Errors
///
/// [`io::Error`] when the address cannot be bound.
pub fn serve(addr: impl ToSocketAddrs, runtime: Runtime) -> io::Result<()> {
    let listener = TcpListener::bind(addr)?;
    eprintln!("optpower worker listening on {}", listener.local_addr()?);
    let never = Arc::new(AtomicBool::new(false));
    accept_loop(&listener, &runtime, &never);
    Ok(())
}

fn accept_loop(listener: &TcpListener, runtime: &Runtime, stop: &Arc<AtomicBool>) {
    for conn in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        let runtime = runtime.clone();
        thread::spawn(move || {
            // A torn connection is the coordinator's problem (it
            // reassigns); the worker just moves on.
            let _ = serve_connection(stream, &runtime);
        });
    }
}

/// One coordinator connection: Hello, then Assign → (Heartbeat…)
/// Result/Error until the coordinator hangs up.
fn serve_connection(mut stream: TcpStream, runtime: &Runtime) -> io::Result<()> {
    // Frames are small and latency-bound: never let Nagle sit on a
    // Result while the coordinator's timeout clock runs.
    let _ = stream.set_nodelay(true);
    let host = stream
        .local_addr()
        .map(|a| a.to_string())
        .unwrap_or_else(|_| "unknown".to_string());
    ShardFrame::Hello { host }.write_to(&mut stream)?;
    loop {
        let frame = match ShardFrame::read_from(&mut stream) {
            Ok(frame) => frame,
            // Clean hang-up ends the connection; anything else too.
            Err(_) => return Ok(()),
        };
        let ShardFrame::Assign { shard, spec } = frame else {
            // Only coordinators speak to workers, and they only send
            // Assign; anything else is protocol noise worth dropping
            // the connection over.
            return Ok(());
        };
        let (tx, rx) = mpsc::channel();
        let job_runtime = runtime.clone();
        let job_spec = spec.clone();
        thread::spawn(move || {
            let _ = tx.send(job_runtime.run(&job_spec));
        });
        let reply = loop {
            match rx.recv_timeout(Duration::from_millis(HEARTBEAT_MS)) {
                Ok(Ok(artifact)) => {
                    break ShardFrame::Result(Box::new(ShardResult {
                        shard: shard.clone(),
                        payload_json: artifact.payload_json(),
                        csv: artifact.to_csv(),
                        text: artifact.render_text(),
                        wall_ms: artifact.meta.wall_ms,
                        cache: artifact.meta.cache,
                        row_cache: artifact.meta.row_cache,
                    }))
                }
                Ok(Err(e)) => {
                    break ShardFrame::Error {
                        shard: shard.clone(),
                        error: ErrorBody::of(&e),
                    }
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    ShardFrame::Heartbeat {
                        shard: shard.clone(),
                    }
                    .write_to(&mut stream)?;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => {
                    break ShardFrame::Error {
                        shard: shard.clone(),
                        error: ErrorBody::new(500, "worker_failed", "shard execution thread died"),
                    }
                }
            }
        };
        reply.write_to(&mut stream)?;
    }
}
