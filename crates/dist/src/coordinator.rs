//! The coordinator side: shard a spec, fan the shards out over TCP to
//! worker processes, survive worker death, and merge the results back
//! into the single-host envelope bit for bit.
//!
//! Three rules keep the merged artifact deterministic whatever the
//! cluster does:
//!
//! * **deterministic assignment** — each shard's home host is the
//!   rendezvous-hash winner over the *alive* host set
//!   ([`assign_host`]), so two coordinators with the same host list
//!   agree, and losing a host only moves that host's shards;
//! * **result identity by shard key** — results are keyed by the shard
//!   spec's canonical key and merged in shard order, so retries,
//!   duplicates and arrival order cannot change the payload;
//! * **failure taxonomy** — a worker *death* (connect failure, EOF,
//!   heartbeat silence past the timeout) retries the unfinished
//!   shards elsewhere and is visible only in `meta.dist.retries`,
//!   while a *deterministic* shard error (the job itself is invalid
//!   or unsolvable) fails the whole run immediately: retrying a pure
//!   function cannot change its answer.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::net::TcpStream;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use optpower_explore::{available_workers, Workers};
use optpower_workload::{
    fnv1a_64, Artifact, CacheStatus, DistMeta, ErrorBody, JobSpec, Json, RowCacheStats, ShardFrame,
    ShardResult, SpecError, WorkloadError,
};

/// Default per-shard silence window before a worker is declared dead.
/// Workers heartbeat every [`crate::HEARTBEAT_MS`], so this bounds
/// death *detection* latency, not shard compute time.
pub const DEFAULT_SHARD_TIMEOUT_MS: u64 = 10_000;

/// Pluggable coordinator-side cache of completed shard results,
/// keyed by the shard spec's canonical key. The serve crate plugs its
/// bounded `ShardCache` in here so a shard resubmitted after a retry
/// (or by the next job sharing grid cells) never travels to a worker.
pub trait ShardResultCache: Send + Sync {
    /// The cached result for a shard key, if resident.
    fn lookup(&self, shard_key: &str) -> Option<ShardResult>;
    /// Stores a completed shard result.
    fn insert(&self, shard_key: &str, result: &ShardResult);
}

/// How a distributed run failed.
#[derive(Debug)]
pub enum DistError {
    /// Local sharding/merge/validation failure.
    Workload(WorkloadError),
    /// A shard failed deterministically on a worker — the job is at
    /// fault, so the coordinator did not retry.
    Shard(ErrorBody),
    /// Every worker host died before the job completed.
    AllHostsDead {
        /// What happened to the last host.
        detail: String,
    },
}

impl From<WorkloadError> for DistError {
    fn from(e: WorkloadError) -> Self {
        DistError::Workload(e)
    }
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Workload(e) => e.fmt(f),
            DistError::Shard(body) => write!(f, "shard failed: {}", body.message),
            DistError::AllHostsDead { detail } => {
                write!(f, "all worker hosts died ({detail})")
            }
        }
    }
}

impl std::error::Error for DistError {}

impl DistError {
    /// The frozen machine-readable form, for front-ends that signal
    /// through `optpower-error/v1`.
    pub fn error_body(&self) -> ErrorBody {
        match self {
            DistError::Workload(e) => ErrorBody::of(e),
            DistError::Shard(body) => body.clone(),
            DistError::AllHostsDead { detail } => ErrorBody::new(500, "worker_failed", detail),
        }
    }
}

/// Scheduling facts of one distributed run, for `/metrics` and logs.
#[derive(Debug, Clone, Default)]
pub struct DistStats {
    /// Completed shards per host address (every configured host
    /// present, zero included).
    pub per_host: BTreeMap<String, u64>,
    /// Shards reassigned after a worker death or timeout.
    pub retries: u64,
    /// Shards the job was split into.
    pub shards: usize,
    /// Configured worker hosts.
    pub hosts: usize,
    /// Shards served from the coordinator's shard cache.
    pub shard_cache_hits: u64,
    /// Shards that had to travel to a worker.
    pub shard_cache_misses: u64,
    /// Worker artifact-cache hits across shards.
    pub cache_hits: u64,
    /// Worker artifact-cache misses across shards.
    pub cache_misses: u64,
    /// Worker row-cache counters summed across shards, when any
    /// worker reported them.
    pub row_cache: Option<RowCacheStats>,
    /// Coordinator wall clock of the whole run, in milliseconds.
    pub wall_ms: f64,
}

/// A merged distributed run: the three renderings (always), the typed
/// artifact when the kind reconstructs typed, and the scheduling
/// stats.
#[derive(Debug, Clone)]
pub struct DistRun {
    /// The merged typed artifact with `meta.dist` stamped — present
    /// for the typed-merge kinds (`ab_initio`, `glitch_sweep`,
    /// `table1_sweep`); `None` for rendered-level merges (batch and
    /// indivisible jobs).
    pub artifact: Option<Artifact>,
    /// The full JSON envelope (payload + `meta` incl. `dist`).
    pub json: String,
    /// The deterministic payload document — byte-identical to the
    /// single-host [`Artifact::payload_json`].
    pub payload_json: String,
    /// The CSV rendering — byte-identical to the single-host one.
    pub csv: String,
    /// The console rendering — byte-identical to the single-host one.
    pub text: String,
    /// Scheduling facts of the run.
    pub stats: DistStats,
}

/// The deterministic shard → host map: highest-random-weight
/// (rendezvous) hash of `"{shard_key}|{host}"` over the alive host
/// set; ties break to the lexicographically smallest host. Removing a
/// dead host only remaps that host's shards — everything else keeps
/// its assignment, which is what makes retry placement stable and
/// testable.
pub fn assign_host<'a>(hosts: &'a [String], shard_key: &str) -> &'a str {
    hosts
        .iter()
        .max_by(|a, b| {
            let wa = fnv1a_64(format!("{shard_key}|{a}").as_bytes());
            let wb = fnv1a_64(format!("{shard_key}|{b}").as_bytes());
            wa.cmp(&wb).then_with(|| b.cmp(a))
        })
        .expect("assign_host requires a non-empty host list")
}

/// A coordinator over a fixed set of worker addresses.
#[derive(Clone)]
pub struct Cluster {
    hosts: Vec<String>,
    shards: usize,
    timeout_ms: u64,
    workers: Workers,
    cache: Option<Arc<dyn ShardResultCache>>,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("hosts", &self.hosts)
            .field("shards", &self.shards)
            .field("timeout_ms", &self.timeout_ms)
            .field("cache", &self.cache.is_some())
            .finish()
    }
}

impl Cluster {
    /// A cluster over `hosts` (worker `host:port` addresses),
    /// targeting one shard per host and the default timeout.
    pub fn new(hosts: Vec<String>) -> Self {
        let shards = hosts.len().max(1);
        Self {
            hosts,
            shards,
            timeout_ms: DEFAULT_SHARD_TIMEOUT_MS,
            workers: Workers::Auto,
            cache: None,
        }
    }

    /// Overrides the target shard count (the `n` handed to
    /// [`JobSpec::shard`]).
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Overrides the per-shard silence timeout.
    pub fn with_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.timeout_ms = timeout_ms.max(1);
        self
    }

    /// Worker policy of the coordinator's own (small) compute steps —
    /// currently only the glitch-sweep rebuild from merged rows.
    pub fn with_workers(mut self, workers: Workers) -> Self {
        self.workers = workers;
        self
    }

    /// Attaches a shard-result cache consulted before fan-out and
    /// filled after every completed shard.
    pub fn with_cache(mut self, cache: Arc<dyn ShardResultCache>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// The configured worker addresses.
    pub fn hosts(&self) -> &[String] {
        &self.hosts
    }

    /// Runs one job across the cluster: shard, assign, execute with
    /// retry-on-death, merge. The merged `payload_json`/`csv`/`text`
    /// are byte-identical to the single-host run; distribution shows
    /// up only in `meta.dist` and [`DistStats`].
    ///
    /// # Errors
    ///
    /// [`DistError`] — spec/merge problems, a deterministic shard
    /// failure, or the whole cluster dying.
    pub fn run(&self, spec: &JobSpec) -> Result<DistRun, DistError> {
        let started = Instant::now();
        if self.hosts.is_empty() {
            return Err(WorkloadError::from(SpecError::new(
                "a cluster needs at least one worker host",
            ))
            .into());
        }
        // A glitch sweep always decomposes (its payload has no typed
        // single-document re-parser, but its ab-initio cells do);
        // every other kind honours the requested count, including the
        // n = 1 pass-through.
        let target = match spec {
            JobSpec::GlitchSweep(_) => self.shards.max(2),
            _ => self.shards,
        };
        let keyed: Vec<(String, JobSpec)> = spec
            .shard(target)?
            .into_iter()
            .map(|s| (s.canonical_key(), s))
            .collect();
        let mut stats = DistStats {
            per_host: self.hosts.iter().map(|h| (h.clone(), 0)).collect(),
            shards: keyed.len(),
            hosts: self.hosts.len(),
            ..DistStats::default()
        };
        let mut results: HashMap<String, ShardResult> = HashMap::new();
        if let Some(cache) = &self.cache {
            for (key, _) in &keyed {
                match cache.lookup(key) {
                    Some(r) => {
                        results.insert(key.clone(), r);
                        stats.shard_cache_hits += 1;
                    }
                    None => stats.shard_cache_misses += 1,
                }
            }
        }
        let mut alive = self.hosts.clone();
        let mut last_death = String::from("no host contacted");
        while results.len() < keyed.len() {
            if alive.is_empty() {
                return Err(DistError::AllHostsDead { detail: last_death });
            }
            let mut assignment: BTreeMap<String, Vec<&(String, JobSpec)>> = BTreeMap::new();
            for pair in keyed.iter().filter(|(k, _)| !results.contains_key(k)) {
                assignment
                    .entry(assign_host(&alive, &pair.0).to_string())
                    .or_default()
                    .push(pair);
            }
            let timeout_ms = self.timeout_ms;
            let round: Vec<(String, usize, HostOutcome)> = thread::scope(|scope| {
                let handles: Vec<_> = assignment
                    .iter()
                    .map(|(host, shards)| {
                        scope.spawn(move || {
                            (
                                host.clone(),
                                shards.len(),
                                run_host(host, shards, timeout_ms),
                            )
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("host thread does not panic"))
                    .collect()
            });
            for (host, assigned, outcome) in round {
                let completed = outcome.completed.len() as u64;
                *stats.per_host.entry(host.clone()).or_insert(0) += completed;
                for r in outcome.completed {
                    if let Some(cache) = &self.cache {
                        cache.insert(&r.shard, &r);
                    }
                    results.insert(r.shard.clone(), r);
                }
                if let Some(body) = outcome.failed {
                    return Err(DistError::Shard(body));
                }
                if outcome.died {
                    stats.retries += assigned as u64 - completed;
                    last_death = format!("{host} stopped responding");
                    alive.retain(|h| h != &host);
                }
            }
        }
        // Everything below is pure merging; order results in shard
        // order so arrival order is irrelevant.
        let ordered: Vec<ShardResult> = keyed
            .iter()
            .map(|(k, _)| results.remove(k).expect("loop exits only when complete"))
            .collect();
        for r in &ordered {
            match r.cache {
                Some(CacheStatus::Hit) => stats.cache_hits += 1,
                Some(CacheStatus::Miss) => stats.cache_misses += 1,
                None => {}
            }
            if let Some(rc) = r.row_cache {
                let sum = stats.row_cache.get_or_insert_with(RowCacheStats::default);
                sum.hits += rc.hits;
                sum.misses += rc.misses;
            }
        }
        let dist = DistMeta {
            hosts: self.hosts.len(),
            shards: keyed.len(),
            retries: stats.retries,
        };
        stats.wall_ms = started.elapsed().as_secs_f64() * 1e3;
        self.merge(spec, &keyed, ordered, dist, stats)
    }

    fn merge(
        &self,
        spec: &JobSpec,
        keyed: &[(String, JobSpec)],
        ordered: Vec<ShardResult>,
        dist: DistMeta,
        stats: DistStats,
    ) -> Result<DistRun, DistError> {
        // A single shard whose spec IS the whole job (the n = 1 path
        // of every kind, batches included) needs no recomposition.
        let passthrough = keyed.len() == 1 && keyed[0].0 == spec.canonical_key();
        match spec {
            // Typed merge: re-parse shard payloads into real rows and
            // reassemble in spec order.
            JobSpec::AbInitio(_) | JobSpec::GlitchSweep(_) | JobSpec::Table1Sweep { .. } => {
                let artifacts = ordered
                    .iter()
                    .map(|r| Artifact::from_payload_json(&r.payload_json))
                    .collect::<Result<Vec<_>, _>>()?;
                let mut artifact = Artifact::merge_shards(spec, artifacts, self.workers)?;
                artifact.meta.wall_ms = stats.wall_ms;
                artifact.meta.workers = resolved(self.workers);
                artifact.meta.row_cache = stats.row_cache;
                artifact.meta.dist = Some(dist);
                Ok(DistRun {
                    json: artifact.to_json(),
                    payload_json: artifact.payload_json(),
                    csv: artifact.to_csv(),
                    text: artifact.render_text(),
                    artifact: Some(artifact),
                    stats,
                })
            }
            // Rendered merge: member documents recompose exactly
            // because the JSON tree round-trips bytes.
            JobSpec::Batch(jobs) if !passthrough => {
                let mut by_key: HashMap<String, &ShardResult> = HashMap::new();
                for (i, (key, _)) in keyed.iter().enumerate() {
                    by_key.insert(key.clone(), &ordered[i]);
                }
                let mut entries = Vec::new();
                let mut csv = String::new();
                let mut texts = Vec::new();
                for job in jobs {
                    let r = by_key.get(&job.canonical_key()).ok_or_else(|| {
                        WorkloadError::from(SpecError::new(format!(
                            "shard results missing batch member {:?}",
                            job.kind()
                        )))
                    })?;
                    let doc = parse_payload_doc(&r.payload_json)?;
                    entries.push(Json::obj([
                        ("job", field(&doc, "job")?),
                        ("spec", field(&doc, "spec")?),
                        ("payload", field(&doc, "payload")?),
                    ]));
                    csv.push_str(&format!("# job: {}\n", job.kind()));
                    csv.push_str(&r.csv);
                    texts.push(r.text.clone());
                }
                let payload_doc = Json::obj([
                    ("schema", Json::str("optpower-workload/v1")),
                    ("job", Json::str("batch")),
                    ("spec", spec.to_json_value()),
                    ("payload", Json::Arr(entries)),
                ]);
                let payload_json = payload_doc.to_string();
                let json = envelope(payload_doc, &stats, None, None, dist);
                Ok(DistRun {
                    artifact: None,
                    json,
                    payload_json,
                    csv,
                    text: texts.join("\n"),
                    stats,
                })
            }
            // Indivisible job: the single shard's renderings pass
            // through verbatim; only the envelope meta is rebuilt.
            _ => {
                let r = ordered.into_iter().next().ok_or_else(|| {
                    WorkloadError::from(SpecError::new("no shard results to merge"))
                })?;
                let payload_doc = parse_payload_doc(&r.payload_json)?;
                let json = envelope(payload_doc, &stats, r.cache, r.row_cache, dist);
                Ok(DistRun {
                    artifact: None,
                    json,
                    payload_json: r.payload_json,
                    csv: r.csv,
                    text: r.text,
                    stats,
                })
            }
        }
    }
}

#[derive(Default)]
struct HostOutcome {
    completed: Vec<ShardResult>,
    failed: Option<ErrorBody>,
    died: bool,
}

/// Drives one host through its assigned shards over one connection.
/// Any transport irregularity — connect failure, missing Hello, EOF,
/// a read timing out past the heartbeat window — marks the host dead;
/// only an explicit Error frame is a deterministic job failure.
fn run_host(host: &str, shards: &[&(String, JobSpec)], timeout_ms: u64) -> HostOutcome {
    let mut out = HostOutcome::default();
    let mut stream = match TcpStream::connect(host) {
        Ok(s) => s,
        Err(_) => {
            out.died = true;
            return out;
        }
    };
    let _ = stream.set_read_timeout(Some(Duration::from_millis(timeout_ms)));
    let _ = stream.set_nodelay(true);
    match ShardFrame::read_from(&mut stream) {
        Ok(ShardFrame::Hello { .. }) => {}
        _ => {
            out.died = true;
            return out;
        }
    }
    for (key, spec) in shards {
        let assign = ShardFrame::Assign {
            shard: key.clone(),
            spec: spec.clone(),
        };
        if assign.write_to(&mut stream).is_err() {
            out.died = true;
            return out;
        }
        loop {
            match ShardFrame::read_from(&mut stream) {
                Ok(ShardFrame::Heartbeat { .. }) => continue,
                Ok(ShardFrame::Result(r)) if r.shard == *key => {
                    out.completed.push(*r);
                    break;
                }
                Ok(ShardFrame::Error { error, .. }) => {
                    out.failed = Some(error);
                    return out;
                }
                Ok(_) | Err(_) => {
                    out.died = true;
                    return out;
                }
            }
        }
    }
    out
}

/// The concrete worker count for envelope metadata.
fn resolved(workers: Workers) -> usize {
    match workers {
        Workers::Auto => available_workers(),
        Workers::Fixed(n) => n.max(1),
    }
}

fn parse_payload_doc(text: &str) -> Result<Json, WorkloadError> {
    Json::parse(text).map_err(|e| SpecError::new(e.to_string()).into())
}

fn field(doc: &Json, key: &str) -> Result<Json, WorkloadError> {
    doc.get(key)
        .cloned()
        .ok_or_else(|| SpecError::new(format!("shard payload document lacks {key:?}")).into())
}

/// Appends the run `meta` object to a payload document, in the exact
/// field order [`Artifact::to_json`] uses.
fn envelope(
    payload_doc: Json,
    stats: &DistStats,
    cache: Option<CacheStatus>,
    row_cache: Option<RowCacheStats>,
    dist: DistMeta,
) -> String {
    let Json::Obj(mut pairs) = payload_doc else {
        unreachable!("payload documents are objects");
    };
    let mut meta = vec![
        ("seed".to_string(), Json::Null),
        (
            "workers".to_string(),
            Json::UInt(resolved(Workers::Auto) as u64),
        ),
        ("engine".to_string(), Json::Null),
        ("wall_ms".to_string(), Json::num(stats.wall_ms)),
        (
            "cache".to_string(),
            cache.map(|c| Json::str(c.label())).unwrap_or(Json::Null),
        ),
    ];
    if let Some(rc) = row_cache {
        meta.push((
            "row_cache".to_string(),
            Json::obj([
                ("hits", Json::UInt(rc.hits)),
                ("misses", Json::UInt(rc.misses)),
            ]),
        ));
    }
    meta.push((
        "dist".to_string(),
        Json::obj([
            ("hosts", Json::UInt(dist.hosts as u64)),
            ("shards", Json::UInt(dist.shards as u64)),
            ("retries", Json::UInt(dist.retries)),
        ]),
    ));
    pairs.push(("meta".to_string(), Json::Obj(meta)));
    Json::Obj(pairs).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Rendezvous assignment is deterministic, total, and minimally
    /// disruptive: removing a host only remaps that host's shards.
    #[test]
    fn rendezvous_assignment_is_stable_under_host_loss() {
        let hosts: Vec<String> = ["h1:1", "h2:1", "h3:1"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let keys: Vec<String> = (0..64).map(|i| format!("{i:016x}")).collect();
        let full: Vec<&str> = keys.iter().map(|k| assign_host(&hosts, k)).collect();
        // Deterministic: same inputs, same answers.
        for (k, &h) in keys.iter().zip(&full) {
            assert_eq!(assign_host(&hosts, k), h);
        }
        // Every host gets some work on a 64-shard axis.
        for h in &hosts {
            assert!(full.iter().any(|&a| a == h), "{h} got nothing");
        }
        // Minimal disruption: dropping h2 remaps only h2's shards.
        let reduced: Vec<String> = hosts.iter().filter(|h| *h != "h2:1").cloned().collect();
        for (k, &before) in keys.iter().zip(&full) {
            let after = assign_host(&reduced, k);
            if before != "h2:1" {
                assert_eq!(after, before, "{k} moved needlessly");
            } else {
                assert_ne!(after, "h2:1");
            }
        }
    }

    /// A cluster with no hosts fails fast with a typed error.
    #[test]
    fn empty_cluster_is_a_spec_error() {
        let err = Cluster::new(Vec::new())
            .run(&JobSpec::Table2)
            .expect_err("no hosts");
        assert!(matches!(err, DistError::Workload(WorkloadError::Spec(_))));
        assert_eq!(err.error_body().code, "invalid_spec");
    }
}
