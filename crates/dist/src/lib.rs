#![doc = include_str!("../README.md")]
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coordinator;
pub mod worker;

pub use coordinator::{
    assign_host, Cluster, DistError, DistRun, DistStats, ShardResultCache, DEFAULT_SHARD_TIMEOUT_MS,
};
pub use worker::{serve, spawn, WorkerHandle, HEARTBEAT_MS};
