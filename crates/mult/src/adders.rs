//! Reusable adder sub-generators: full/half adders, ripple-carry and
//! Kogge–Stone carry-propagate adders, and column compression.

use optpower_netlist::{CellKind, NetId, NetlistBuilder};

/// Adds a full adder (one `Xor3` + one `Maj3`); returns `(sum, carry)`.
pub fn full_adder(b: &mut NetlistBuilder, x: NetId, y: NetId, z: NetId) -> (NetId, NetId) {
    let sum = b.add_cell(CellKind::Xor3, &[x, y, z]);
    let carry = b.add_cell(CellKind::Maj3, &[x, y, z]);
    (sum, carry)
}

/// Adds a half adder (one `Xor2` + one `And2`); returns `(sum, carry)`.
pub fn half_adder(b: &mut NetlistBuilder, x: NetId, y: NetId) -> (NetId, NetId) {
    let sum = b.add_cell(CellKind::Xor2, &[x, y]);
    let carry = b.add_cell(CellKind::And2, &[x, y]);
    (sum, carry)
}

/// Ripple-carry adder over equal-width operands; returns `width + 1`
/// sum bits (carry out last).
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn ripple_adder(
    b: &mut NetlistBuilder,
    x: &[NetId],
    y: &[NetId],
    cin: Option<NetId>,
) -> Vec<NetId> {
    assert_eq!(x.len(), y.len(), "ripple operands must have equal width");
    assert!(!x.is_empty(), "ripple operands must be non-empty");
    let mut out = Vec::with_capacity(x.len() + 1);
    let mut carry = cin;
    for i in 0..x.len() {
        let (s, c) = match carry {
            Some(cn) => full_adder(b, x[i], y[i], cn),
            None => half_adder(b, x[i], y[i]),
        };
        out.push(s);
        carry = Some(c);
    }
    out.push(carry.expect("width >= 1 always yields a carry"));
    out
}

/// Kogge–Stone parallel-prefix adder; returns `width + 1` sum bits
/// (carry out last). Logarithmic depth — the "fast final adder" of the
/// Wallace multipliers.
///
/// # Panics
///
/// Panics if the operand widths differ or are zero.
pub fn kogge_stone_adder(
    b: &mut NetlistBuilder,
    x: &[NetId],
    y: &[NetId],
    cin: Option<NetId>,
) -> Vec<NetId> {
    assert_eq!(
        x.len(),
        y.len(),
        "kogge-stone operands must have equal width"
    );
    let w = x.len();
    assert!(w > 0, "kogge-stone operands must be non-empty");

    // Bit-level generate/propagate.
    let mut g: Vec<NetId> = (0..w)
        .map(|i| b.add_cell(CellKind::And2, &[x[i], y[i]]))
        .collect();
    let mut p: Vec<NetId> = (0..w)
        .map(|i| b.add_cell(CellKind::Xor2, &[x[i], y[i]]))
        .collect();
    let p_bits = p.clone(); // sum needs the original propagate bits

    // Fold carry-in into position 0: g0' = g0 | (p0 & cin).
    if let Some(cn) = cin {
        let t = b.add_cell(CellKind::And2, &[p[0], cn]);
        g[0] = b.add_cell(CellKind::Or2, &[g[0], t]);
    }

    // Prefix network: (g, p) ∘ (g', p') = (g | (p & g'), p & p').
    let mut dist = 1;
    while dist < w {
        let mut g_next = g.clone();
        let mut p_next = p.clone();
        for i in dist..w {
            let t = b.add_cell(CellKind::And2, &[p[i], g[i - dist]]);
            g_next[i] = b.add_cell(CellKind::Or2, &[g[i], t]);
            p_next[i] = b.add_cell(CellKind::And2, &[p[i], p[i - dist]]);
        }
        g = g_next;
        p = p_next;
        dist *= 2;
    }

    // Sum: s_i = p_i ^ carry_{i-1}; carry_{i-1} = G_{i-1} (carry into bit i).
    let mut out = Vec::with_capacity(w + 1);
    for i in 0..w {
        let s = if i == 0 {
            match cin {
                Some(cn) => b.add_cell(CellKind::Xor2, &[p_bits[0], cn]),
                None => b.add_cell(CellKind::Buf, &[p_bits[0]]),
            }
        } else {
            b.add_cell(CellKind::Xor2, &[p_bits[i], g[i - 1]])
        };
        out.push(s);
    }
    out.push(g[w - 1]); // carry out
    out
}

/// Compresses weight-indexed bit columns to at most two rows using
/// full/half adders (Wallace-style reduction), then returns the two
/// rows padded with `Const0` to the same width.
///
/// `columns[w]` holds the bits of weight `w`. Used by the Wallace
/// multipliers and the 4×16 sequential datapath.
pub fn reduce_columns(
    b: &mut NetlistBuilder,
    mut columns: Vec<Vec<NetId>>,
) -> (Vec<NetId>, Vec<NetId>) {
    loop {
        let max_height = columns.iter().map(Vec::len).max().unwrap_or(0);
        if max_height <= 2 {
            break;
        }
        let mut next: Vec<Vec<NetId>> = vec![Vec::new(); columns.len() + 1];
        for (w, col) in columns.iter().enumerate() {
            let mut i = 0;
            // Groups of three through a full adder…
            while col.len() - i >= 3 {
                let (s, c) = full_adder(b, col[i], col[i + 1], col[i + 2]);
                next[w].push(s);
                next[w + 1].push(c);
                i += 3;
            }
            // …a leftover pair through a half adder (only when the
            // column is over-height, to avoid needless cells)…
            if col.len() - i == 2 && col.len() > 2 {
                let (s, c) = half_adder(b, col[i], col[i + 1]);
                next[w].push(s);
                next[w + 1].push(c);
                i += 2;
            }
            // …stragglers pass through.
            while i < col.len() {
                next[w].push(col[i]);
                i += 1;
            }
        }
        while next.last().is_some_and(Vec::is_empty) {
            next.pop();
        }
        columns = next;
    }

    // Split the ≤2-high columns into two rows, zero-padded.
    let width = columns.len();
    let zero = b.add_cell(CellKind::Const0, &[]);
    let mut row_a = Vec::with_capacity(width);
    let mut row_b = Vec::with_capacity(width);
    for col in &columns {
        row_a.push(col.first().copied().unwrap_or(zero));
        row_b.push(col.get(1).copied().unwrap_or(zero));
    }
    (row_a, row_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_netlist::Netlist;
    use optpower_sim::ZeroDelaySim;

    /// Builds an adder test harness: a + b (+ cin fixed 0) = p.
    fn adder_netlist(width: usize, kogge: bool) -> Netlist {
        let mut b = NetlistBuilder::new("adder");
        let xs: Vec<NetId> = (0..width).map(|i| b.add_input(format!("a{i}"))).collect();
        let ys: Vec<NetId> = (0..width).map(|i| b.add_input(format!("b{i}"))).collect();
        let sum = if kogge {
            kogge_stone_adder(&mut b, &xs, &ys, None)
        } else {
            ripple_adder(&mut b, &xs, &ys, None)
        };
        for (i, s) in sum.into_iter().enumerate() {
            b.add_output(format!("p{i}"), s);
        }
        b.build().unwrap()
    }

    fn check_adder(width: usize, kogge: bool) {
        let nl = adder_netlist(width, kogge);
        let mut sim = ZeroDelaySim::new(&nl);
        let cases: Vec<(u64, u64)> = vec![
            (0, 0),
            (1, 1),
            ((1 << width) - 1, 1),
            ((1 << width) - 1, (1 << width) - 1),
            (0x5A5A & ((1 << width) - 1), 0xA5A5 & ((1 << width) - 1)),
        ];
        for (a, b) in cases {
            sim.set_input_bits("a", a);
            sim.set_input_bits("b", b);
            sim.step();
            assert_eq!(sim.output_bits("p"), Some(a + b), "{a}+{b} w={width}");
        }
    }

    #[test]
    fn ripple_adds_correctly() {
        check_adder(8, false);
        check_adder(16, false);
    }

    #[test]
    fn kogge_stone_adds_correctly() {
        check_adder(8, true);
        check_adder(16, true);
        check_adder(13, true); // non-power-of-two width
    }

    #[test]
    fn kogge_stone_exhaustive_4bit() {
        let nl = adder_netlist(4, true);
        let mut sim = ZeroDelaySim::new(&nl);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_input_bits("a", a);
                sim.set_input_bits("b", b);
                sim.step();
                assert_eq!(sim.output_bits("p"), Some(a + b), "{a}+{b}");
            }
        }
    }

    #[test]
    fn adder_with_carry_in() {
        let mut b = NetlistBuilder::new("cin");
        let xs: Vec<NetId> = (0..4).map(|i| b.add_input(format!("a{i}"))).collect();
        let ys: Vec<NetId> = (0..4).map(|i| b.add_input(format!("b{i}"))).collect();
        let one = b.add_cell(CellKind::Const1, &[]);
        let sum = kogge_stone_adder(&mut b, &xs, &ys, Some(one));
        for (i, s) in sum.into_iter().enumerate() {
            b.add_output(format!("p{i}"), s);
        }
        let nl = b.build().unwrap();
        let mut sim = ZeroDelaySim::new(&nl);
        for (a, y) in [(3u64, 4u64), (15, 15), (0, 0)] {
            sim.set_input_bits("a", a);
            sim.set_input_bits("b", y);
            sim.step();
            assert_eq!(sim.output_bits("p"), Some(a + y + 1));
        }
    }

    #[test]
    fn reduce_columns_preserves_value() {
        // Feed 5 bits of weight 0 and 3 bits of weight 1; the two
        // output rows must sum to the same total.
        let mut b = NetlistBuilder::new("cols");
        let bits0: Vec<NetId> = (0..5).map(|i| b.add_input(format!("a{i}"))).collect();
        let bits1: Vec<NetId> = (0..3).map(|i| b.add_input(format!("b{i}"))).collect();
        let (ra, rb) = reduce_columns(&mut b, vec![bits0, bits1]);
        let sum = ripple_adder(&mut b, &ra, &rb, None);
        for (i, s) in sum.into_iter().enumerate() {
            b.add_output(format!("p{i}"), s);
        }
        let nl = b.build().unwrap();
        let mut sim = ZeroDelaySim::new(&nl);
        for a in 0..32u64 {
            for y in 0..8u64 {
                sim.set_input_bits("a", a);
                sim.set_input_bits("b", y);
                sim.step();
                let expect = u64::from(a.count_ones()) + 2 * u64::from(y.count_ones());
                assert_eq!(sim.output_bits("p"), Some(expect), "a={a:05b} b={y:03b}");
            }
        }
    }

    #[test]
    fn kogge_stone_is_shallower_than_ripple() {
        use optpower_netlist::Library;
        use optpower_sta::TimingAnalysis;
        let lib = Library::cmos13();
        let ks = TimingAnalysis::analyze(&adder_netlist(16, true), &lib);
        let rc = TimingAnalysis::analyze(&adder_netlist(16, false), &lib);
        assert!(
            ks.logical_depth() < rc.logical_depth() * 0.6,
            "ks {} vs rc {}",
            ks.logical_depth(),
            rc.logical_depth()
        );
    }
}
