//! The parallelisation transform: `k` replicas of a combinational
//! multiplier core with round-robin operand distribution and output
//! multiplexing ("obtained by replicating the basic multiplier and
//! multiplexing data across them. This way, each multiplier has
//! additional clock cycles at its disposal relaxing timing
//! constraints", Section 4).
//!
//! Structure per replica: operand hold registers loaded on the
//! replica's phase, the combinational core, and a shared output
//! multiplexer feeding a product register. The added muxes and
//! registers are exactly the "overhead introduced by parallelization"
//! that cancels the benefit on already-fast cores (Wallace par4).

use optpower_netlist::{CellKind, NetId, Netlist, NetlistBuilder, NetlistError};

/// Which combinational core to replicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreKind {
    /// The RCA array core.
    Rca,
    /// The Wallace-tree core.
    Wallace,
}

/// Generates a `k`-way parallelised multiplier (`k` ∈ {2, 4}).
///
/// Inputs: `a`, `b` operand buses and a 1-bit `rst` bus (held high for
/// the first data item). A new operand pair arrives every clock cycle;
/// replica `r` captures the items with `item mod k == r` and computes
/// them over `k` cycles (multi-cycle paths), so the effective logical
/// depth per data period is the core depth divided by `k`.
///
/// The netlist is dead-cone pruned: the phase counter's final
/// increment carry and the core's unconsumed cells are removed.
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation.
///
/// # Panics
///
/// Panics unless `k` is 2 or 4 and `width >= 2`.
pub fn parallelized(width: usize, k: u32, core: CoreKind) -> Result<Netlist, NetlistError> {
    parallelized_builder(width, k, core).build_pruned()
}

/// The raw (pre-prune) builder behind [`parallelized`].
///
/// # Panics
///
/// Same contract as [`parallelized`].
pub(crate) fn parallelized_builder(width: usize, k: u32, core: CoreKind) -> NetlistBuilder {
    assert!(
        k == 2 || k == 4,
        "parallelisation supports k = 2 or 4, got {k}"
    );
    assert!(width >= 2, "multiplier width must be >= 2, got {width}");
    let w = width;
    let name = match core {
        CoreKind::Rca => format!("rca_par{k}"),
        CoreKind::Wallace => format!("wallace_par{k}"),
    };
    let mut b = NetlistBuilder::new(&name);

    let a_in: Vec<NetId> = (0..w).map(|j| b.add_input(format!("a{j}"))).collect();
    let b_in: Vec<NetId> = (0..w).map(|i| b.add_input(format!("b{i}"))).collect();
    let rst = b.add_input("rst0");
    let not_rst = b.add_cell(CellKind::Inv, &[rst]);

    // Phase counter mod k with synchronous reset.
    let bits = k.trailing_zeros();
    let phase: Vec<NetId> = {
        let q: Vec<NetId> = (0..bits)
            .map(|_| b.add_cell(CellKind::Dff, &[rst]))
            .collect();
        let mut inc = Vec::new();
        let mut carry: Option<NetId> = None;
        for &qi in &q {
            match carry {
                None => {
                    inc.push(b.add_cell(CellKind::Inv, &[qi]));
                    carry = Some(qi);
                }
                Some(c) => {
                    inc.push(b.add_cell(CellKind::Xor2, &[qi, c]));
                    carry = Some(b.add_cell(CellKind::And2, &[qi, c]));
                }
            }
        }
        for (i, &qi) in q.iter().enumerate() {
            let d = b.add_cell(CellKind::And2, &[inc[i], not_rst]);
            b.rewire(qi, 0, d);
        }
        q
    };

    // Phase decode: load_r = (phase == r).
    let phase_inv: Vec<NetId> = phase
        .iter()
        .map(|&p| b.add_cell(CellKind::Inv, &[p]))
        .collect();
    let load_for = |b: &mut NetlistBuilder, r: u32| -> NetId {
        let mut terms: Vec<NetId> = (0..bits)
            .map(|i| {
                if (r >> i) & 1 == 1 {
                    phase[i as usize]
                } else {
                    phase_inv[i as usize]
                }
            })
            .collect();
        while terms.len() > 1 {
            let y = terms.pop().expect("len > 1");
            let x = terms.pop().expect("len > 1");
            terms.push(b.add_cell(CellKind::And2, &[x, y]));
        }
        terms[0]
    };

    // Replicas: operand hold registers + core.
    let mut replica_products: Vec<Vec<NetId>> = Vec::with_capacity(k as usize);
    for r in 0..k {
        let load_r = load_for(&mut b, r);
        let hold = |b: &mut NetlistBuilder, bits_in: &[NetId]| -> Vec<NetId> {
            bits_in
                .iter()
                .map(|&x| {
                    let q = b.add_cell(CellKind::Dff, &[x]);
                    let d = b.add_cell(CellKind::Mux2, &[q, x, load_r]);
                    b.rewire(q, 0, d);
                    q
                })
                .collect()
        };
        let a_r = hold(&mut b, &a_in);
        let b_r = hold(&mut b, &b_in);
        let product = match core {
            CoreKind::Rca => crate::array::rca_core(&mut b, &a_r, &b_r),
            CoreKind::Wallace => crate::wallace::wallace_core(&mut b, &a_r, &b_r),
        };
        replica_products.push(product);
    }

    // Output stage: during the cycle with phase p, replica p's result
    // (loaded k cycles ago, fully settled) is selected and captured
    // into the product register at the next edge.
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
    for j in 0..2 * w {
        let mux_out = match k {
            2 => b.add_cell(
                CellKind::Mux2,
                &[replica_products[0][j], replica_products[1][j], phase[0]],
            ),
            4 => {
                let m01 = b.add_cell(
                    CellKind::Mux2,
                    &[replica_products[0][j], replica_products[1][j], phase[0]],
                );
                let m23 = b.add_cell(
                    CellKind::Mux2,
                    &[replica_products[2][j], replica_products[3][j], phase[0]],
                );
                b.add_cell(CellKind::Mux2, &[m01, m23, phase[1]])
            }
            _ => unreachable!("k validated above"),
        };
        let p_reg = b.add_cell(CellKind::Dff, &[mux_out]);
        b.add_output(format!("p{j}"), p_reg);
    }

    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_sim::{verify_product, VerifyOutcome};

    fn assert_multiplies(nl: &Netlist) -> u32 {
        match verify_product(nl, 60, 1, 8, 5150) {
            VerifyOutcome::Correct { latency_items } => latency_items,
            VerifyOutcome::Mismatch(m) => panic!("{}: {m}", nl.name()),
        }
    }

    #[test]
    fn rca_par2_multiplies() {
        let lat = assert_multiplies(&parallelized(8, 2, CoreKind::Rca).unwrap());
        assert!(lat >= 2, "latency {lat}");
    }

    #[test]
    fn rca_par4_multiplies() {
        let lat = assert_multiplies(&parallelized(8, 4, CoreKind::Rca).unwrap());
        assert!(lat >= 4, "latency {lat}");
    }

    #[test]
    fn wallace_par2_multiplies() {
        assert_multiplies(&parallelized(8, 2, CoreKind::Wallace).unwrap());
    }

    #[test]
    fn wallace_par4_multiplies() {
        assert_multiplies(&parallelized(8, 4, CoreKind::Wallace).unwrap());
    }

    #[test]
    fn par16_multiplies() {
        assert_multiplies(&parallelized(16, 2, CoreKind::Rca).unwrap());
        assert_multiplies(&parallelized(16, 4, CoreKind::Wallace).unwrap());
    }

    #[test]
    fn replication_scales_cell_count() {
        let base = crate::array::rca(16).unwrap().logic_cell_count();
        let p2 = parallelized(16, 2, CoreKind::Rca)
            .unwrap()
            .logic_cell_count();
        let p4 = parallelized(16, 4, CoreKind::Rca)
            .unwrap()
            .logic_cell_count();
        // Paper: 608 -> 1256 -> 2455 (slightly over k×, due to overhead).
        assert!(p2 as f64 > 1.9 * base as f64, "p2 {p2} base {base}");
        assert!(p4 as f64 > 3.7 * base as f64, "p4 {p4} base {base}");
        assert!(p4 > p2);
    }
}
