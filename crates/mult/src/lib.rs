//! The thirteen 16-bit multiplier architectures of Schuster et al.
//! (DATE 2006), generated as gate-level netlists.
//!
//! | family | variants |
//! |--------|----------|
//! | RCA array | basic, horizontal pipeline ×2/×4 (Fig. 3), diagonal pipeline ×2/×4 (Fig. 4), parallel ×2/×4 |
//! | Wallace tree | basic, parallel ×2/×4 |
//! | Sequential | add-and-shift, 4×16 Wallace, parallel ×2 |
//!
//! Each [`Architecture`] generates a [`MultiplierDesign`]: the netlist
//! plus the protocol metadata (`cycles_per_item`, `ld_scale`) needed to
//! convert simulator/STA measurements into the paper's architectural
//! parameters (`a` per data period, effective `LD` per throughput
//! period).
//!
//! # Examples
//!
//! ```
//! use optpower_mult::Architecture;
//!
//! let design = Architecture::Wallace.generate(16)?;
//! assert!(design.netlist.logic_cell_count() > 500);
//! assert_eq!(design.cycles_per_item, 1);
//! # Ok::<(), optpower_netlist::NetlistError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adders;
pub mod array;
mod booth;
mod parallel;
mod pipeline;
mod sequential;
pub mod wallace;

pub use adders::{full_adder, half_adder, kogge_stone_adder, reduce_columns, ripple_adder};
pub use array::{rca, rca_pipelined, PipelineStyle};
pub use booth::booth_radix4;
pub use parallel::{parallelized, CoreKind};
pub use pipeline::{Pipeliner, Staged};
pub use sequential::{sequential, sequential_4_wallace, sequential_parallel};
pub use wallace::wallace;

use optpower_netlist::{Netlist, NetlistBuilder, NetlistError};

/// The thirteen multiplier architectures of Table 1, in table order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Architecture {
    /// Basic ripple-carry array.
    Rca,
    /// RCA replicated ×2 with round-robin distribution.
    RcaParallel2,
    /// RCA replicated ×4.
    RcaParallel4,
    /// RCA with 2 horizontal pipeline stages (Figure 3).
    RcaHorPipe2,
    /// RCA with 4 horizontal pipeline stages.
    RcaHorPipe4,
    /// RCA with 2 diagonal pipeline stages (Figure 4).
    RcaDiagPipe2,
    /// RCA with 4 diagonal pipeline stages.
    RcaDiagPipe4,
    /// Basic Wallace tree.
    Wallace,
    /// Wallace replicated ×2.
    WallaceParallel2,
    /// Wallace replicated ×4.
    WallaceParallel4,
    /// Add-and-shift sequential (width internal cycles per item).
    Sequential,
    /// Sequential adding 4 partial products per cycle ("4_16 Wallace").
    Seq4Wallace,
    /// Two interleaved sequential cores.
    SeqParallel,
}

impl Architecture {
    /// All architectures in the paper's Table 1 order.
    pub const ALL: [Architecture; 13] = [
        Architecture::Rca,
        Architecture::RcaParallel2,
        Architecture::RcaParallel4,
        Architecture::RcaHorPipe2,
        Architecture::RcaHorPipe4,
        Architecture::RcaDiagPipe2,
        Architecture::RcaDiagPipe4,
        Architecture::Wallace,
        Architecture::WallaceParallel2,
        Architecture::WallaceParallel4,
        Architecture::Sequential,
        Architecture::Seq4Wallace,
        Architecture::SeqParallel,
    ];

    /// The architecture's name as printed in Table 1.
    pub fn paper_name(self) -> &'static str {
        match self {
            Self::Rca => "RCA",
            Self::RcaParallel2 => "RCA parallel",
            Self::RcaParallel4 => "RCA parallel 4",
            Self::RcaHorPipe2 => "RCA hor.pipe2",
            Self::RcaHorPipe4 => "RCA hor.pipe4",
            Self::RcaDiagPipe2 => "RCA diagpipe2",
            Self::RcaDiagPipe4 => "RCA diagpipe4",
            Self::Wallace => "Wallace",
            Self::WallaceParallel2 => "Wallace parallel",
            Self::WallaceParallel4 => "Wallace par4",
            Self::Sequential => "Sequential",
            Self::Seq4Wallace => "Seq4_16",
            Self::SeqParallel => "Seq parallel",
        }
    }

    /// Looks an architecture up by its Table 1 name (the inverse of
    /// [`Architecture::paper_name`]) — the wire-format spelling used
    /// by declarative job specs.
    pub fn from_paper_name(name: &str) -> Option<Self> {
        Self::ALL.iter().copied().find(|a| a.paper_name() == name)
    }

    /// Whether [`Architecture::generate`] accepts `width` for this
    /// architecture (instead of panicking): the array and tree
    /// families take any width ≥ 2, the sequential family needs a
    /// power of two ≥ 4 (≥ 8 for the 4-per-cycle core). Widths above
    /// 32 are rejected everywhere — the simulators drive operands
    /// through `u64` buses and the product needs `2 × width` bits.
    pub fn supports_width(self, width: usize) -> bool {
        if width > 32 {
            return false;
        }
        match self {
            Self::Sequential | Self::SeqParallel => width >= 4 && width.is_power_of_two(),
            Self::Seq4Wallace => width >= 8 && width.is_power_of_two(),
            _ => width >= 2,
        }
    }

    /// Generates the `width × width` instance of this architecture.
    ///
    /// Every generated netlist satisfies the *dead-logic invariant*:
    /// sink-less cones are pruned at build time
    /// ([`optpower_netlist::NetlistBuilder::build_pruned`]), so no
    /// instantiated cell is unreachable from a product bit and the
    /// power model charges only logic that can toggle an output. Use
    /// [`Architecture::generate_raw`] to reproduce the unpruned form.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from netlist validation.
    ///
    /// # Panics
    ///
    /// Panics on widths unsupported by the specific generator (the
    /// sequential family needs a power of two ≥ 4; everything in the
    /// paper uses 16).
    pub fn generate(self, width: usize) -> Result<MultiplierDesign, NetlistError> {
        self.with_netlist(width, self.builder(width).build_pruned()?)
    }

    /// Generates the *raw* (as-emitted, pre-prune) instance: the same
    /// generator output as [`Architecture::generate`] but without the
    /// dead-cone prune, so Wallace/Seq-family netlists still carry
    /// their historical unconsumed cells. Exists for before/after
    /// comparisons (the prune-delta artifact) and build benchmarks —
    /// analyses should use [`Architecture::generate`].
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from netlist validation.
    ///
    /// # Panics
    ///
    /// Same width contract as [`Architecture::generate`].
    pub fn generate_raw(self, width: usize) -> Result<MultiplierDesign, NetlistError> {
        self.with_netlist(width, self.builder(width).build()?)
    }

    /// The raw netlist builder for this architecture.
    fn builder(self, width: usize) -> NetlistBuilder {
        let w = width;
        match self {
            Self::Rca => array::rca_builder(w),
            Self::RcaParallel2 => parallel::parallelized_builder(w, 2, CoreKind::Rca),
            Self::RcaParallel4 => parallel::parallelized_builder(w, 4, CoreKind::Rca),
            Self::RcaHorPipe2 => array::rca_pipelined_builder(w, 2, PipelineStyle::Horizontal),
            Self::RcaHorPipe4 => array::rca_pipelined_builder(w, 4, PipelineStyle::Horizontal),
            Self::RcaDiagPipe2 => array::rca_pipelined_builder(w, 2, PipelineStyle::Diagonal),
            Self::RcaDiagPipe4 => array::rca_pipelined_builder(w, 4, PipelineStyle::Diagonal),
            Self::Wallace => wallace::wallace_builder(w),
            Self::WallaceParallel2 => parallel::parallelized_builder(w, 2, CoreKind::Wallace),
            Self::WallaceParallel4 => parallel::parallelized_builder(w, 4, CoreKind::Wallace),
            Self::Sequential => sequential::sequential_builder(w),
            Self::Seq4Wallace => sequential::sequential_4_wallace_builder(w),
            Self::SeqParallel => sequential::sequential_parallel_builder(w),
        }
    }

    /// Attaches the protocol metadata to a built netlist.
    fn with_netlist(
        self,
        width: usize,
        netlist: Netlist,
    ) -> Result<MultiplierDesign, NetlistError> {
        let w = width;
        let (cycles_per_item, ld_scale) = match self {
            Self::RcaParallel2 | Self::WallaceParallel2 => (1, 0.5),
            Self::RcaParallel4 | Self::WallaceParallel4 => (1, 0.25),
            Self::Sequential => (w as u32, w as f64),
            Self::Seq4Wallace => ((w / 4) as u32, (w / 4) as f64),
            Self::SeqParallel => (w as u32, (w / 2) as f64),
            _ => (1, 1.0),
        };
        Ok(MultiplierDesign {
            arch: self,
            width: w,
            netlist,
            cycles_per_item,
            ld_scale,
        })
    }
}

impl core::fmt::Display for Architecture {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A generated multiplier plus the protocol metadata needed to map
/// measurements onto the paper's architectural parameters.
#[derive(Debug, Clone)]
pub struct MultiplierDesign {
    /// Which architecture this is.
    pub arch: Architecture,
    /// Operand width in bits.
    pub width: usize,
    /// The gate-level netlist.
    pub netlist: Netlist,
    /// Clock cycles consumed per data item (sequential designs run an
    /// internal clock faster than the data clock).
    pub cycles_per_item: u32,
    /// Multiplier applied to the netlist's STA depth to obtain the
    /// *effective* logical depth relative to the throughput period:
    /// `> 1` for sequential designs (the per-cycle path repeats), `< 1`
    /// for parallelised designs (multi-cycle paths get `k` periods).
    pub ld_scale: f64,
}

impl MultiplierDesign {
    /// Effective logical depth per throughput period given the raw STA
    /// critical path of [`MultiplierDesign::netlist`].
    pub fn effective_logical_depth(&self, sta_depth: f64) -> f64 {
        sta_depth * self.ld_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirteen_architectures() {
        assert_eq!(Architecture::ALL.len(), 13);
        let names: std::collections::HashSet<&str> =
            Architecture::ALL.iter().map(|a| a.paper_name()).collect();
        assert_eq!(names.len(), 13);
    }

    #[test]
    fn paper_name_round_trips() {
        for arch in Architecture::ALL {
            assert_eq!(Architecture::from_paper_name(arch.paper_name()), Some(arch));
        }
        assert_eq!(Architecture::from_paper_name("no such design"), None);
    }

    #[test]
    fn supported_widths_generate_cleanly() {
        // The glitch sweep's operand-width axis: every width an
        // architecture claims to support must actually generate.
        for arch in Architecture::ALL {
            for width in [8usize, 16, 24, 32] {
                if arch.supports_width(width) {
                    let d = arch
                        .generate(width)
                        .unwrap_or_else(|e| panic!("{arch} @{width}: {e}"));
                    assert_eq!(d.width, width);
                }
            }
        }
        // 24 bits: fine for arrays/trees, rejected for the sequential
        // family (power-of-two requirement) instead of panicking.
        assert!(Architecture::Rca.supports_width(24));
        assert!(Architecture::Wallace.supports_width(24));
        assert!(!Architecture::Sequential.supports_width(24));
        assert!(!Architecture::Seq4Wallace.supports_width(4));
        assert!(!Architecture::Rca.supports_width(64));
    }

    #[test]
    fn all_generate_at_width_16() {
        for arch in Architecture::ALL {
            let d = arch.generate(16).unwrap_or_else(|e| panic!("{arch}: {e}"));
            assert!(d.netlist.logic_cell_count() > 50, "{arch}");
            assert_eq!(d.width, 16);
        }
    }

    #[test]
    fn sequential_family_is_smallest() {
        // Table 1: sequential N=290 is the smallest design.
        let n = |a: Architecture| a.generate(16).unwrap().netlist.logic_cell_count();
        let seq = n(Architecture::Sequential);
        for arch in [
            Architecture::Rca,
            Architecture::Wallace,
            Architecture::RcaParallel2,
            Architecture::WallaceParallel2,
        ] {
            assert!(seq < n(arch), "{arch}");
        }
    }

    #[test]
    fn ld_scales() {
        assert_eq!(
            Architecture::Sequential.generate(16).unwrap().ld_scale,
            16.0
        );
        assert_eq!(
            Architecture::Seq4Wallace.generate(16).unwrap().ld_scale,
            4.0
        );
        assert_eq!(
            Architecture::SeqParallel.generate(16).unwrap().ld_scale,
            8.0
        );
        assert_eq!(
            Architecture::RcaParallel4.generate(16).unwrap().ld_scale,
            0.25
        );
        assert_eq!(Architecture::Rca.generate(16).unwrap().ld_scale, 1.0);
    }

    #[test]
    fn effective_depth_applies_scale() {
        let d = Architecture::RcaParallel2.generate(16).unwrap();
        assert!((d.effective_logical_depth(60.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Architecture::Seq4Wallace.to_string(), "Seq4_16");
        assert_eq!(Architecture::RcaHorPipe2.to_string(), "RCA hor.pipe2");
    }
}
