//! Radix-4 (modified) Booth multiplier — an *extension* beyond the
//! paper's thirteen architectures.
//!
//! Booth recoding halves the partial-product count (⌈W/2⌉+1 signed
//! digits in {−2, −1, 0, 1, 2} instead of W AND rows), halving the
//! CSA tree — but each partial-product bit costs a select mux and a
//! conditional inverter instead of a single AND, so in this
//! single-rail library the total cell count and critical path come
//! out *comparable* to the Wallace tree rather than smaller (real
//! Booth wins require merged AOI/booth-mux cells). It is the
//! architecture a 2006 follow-up study would have evaluated next, and
//! exercising it through the same measure-and-optimise flow shows the
//! methodology generalises beyond the paper's set.
//!
//! Implementation notes (unsigned `a × b` in 2W-bit wrap-around
//! arithmetic):
//!
//! * digit `k` recodes bits `(b[2k+1], b[2k], b[2k−1])`:
//!   `one = b[2k] ⊕ b[2k−1]`, `two = ±2` detector,
//!   `neg = b[2k+1] ∧ ¬(b[2k] ∧ b[2k−1])`;
//! * the raw magnitude row is `one·a[j] ∨ two·a[j−1]` (W+1 bits),
//!   conditionally inverted by `neg`;
//! * two's-complement correction: `+neg` at column `2k`, plus the
//!   standard sign-extension trick — `¬neg` at the row's top column
//!   and a precomputed constant bit pattern — so the upper columns
//!   stay shallow;
//! * all rows collapse through the shared Wallace column reduction and
//!   a Kogge–Stone final adder.

use optpower_netlist::{CellKind, NetId, Netlist, NetlistBuilder, NetlistError};

use crate::adders::{kogge_stone_adder, reduce_columns};

/// Generates a radix-4 Booth multiplier.
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation.
///
/// # Panics
///
/// Panics unless `width` is even and ≥ 4 (odd widths need a
/// pad digit this generator does not implement).
pub fn booth_radix4(width: usize) -> Result<Netlist, NetlistError> {
    assert!(
        width >= 4 && width.is_multiple_of(2),
        "booth radix-4 needs an even width >= 4, got {width}"
    );
    let w = width;
    let digits = w / 2 + 1; // the extra digit covers the unsigned top bit
    let mut b = NetlistBuilder::new("booth_r4");

    let a: Vec<NetId> = (0..w).map(|j| b.add_input(format!("a{j}"))).collect();
    let bb: Vec<NetId> = (0..w).map(|i| b.add_input(format!("b{i}"))).collect();
    let zero = b.add_cell(CellKind::Const0, &[]);
    let bit = |i: isize| -> NetId {
        if i < 0 || i as usize >= w {
            zero
        } else {
            bb[i as usize]
        }
    };

    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * w];
    // Accumulated constant from the sign-extension identity
    // (replicating s over [c, 2W) equals  ~s·2^c − 2^c  mod 2^{2W}).
    let mut const_accum: u128 = 0;
    for k in 0..digits {
        let b_hi = bit(2 * k as isize + 1);
        let b_mid = bit(2 * k as isize);
        let b_lo = bit(2 * k as isize - 1);

        // Digit recoding.
        let one = b.add_cell(CellKind::Xor2, &[b_mid, b_lo]);
        // two = (hi & !mid & !lo) | (!hi & mid & lo)
        let mid_and_lo = b.add_cell(CellKind::And2, &[b_mid, b_lo]);
        let mid_or_lo = b.add_cell(CellKind::Or2, &[b_mid, b_lo]);
        let not_mid_or_lo = b.add_cell(CellKind::Inv, &[mid_or_lo]);
        let not_hi = b.add_cell(CellKind::Inv, &[b_hi]);
        let two_pos = b.add_cell(CellKind::And2, &[not_hi, mid_and_lo]);
        let two_neg = b.add_cell(CellKind::And2, &[b_hi, not_mid_or_lo]);
        let two = b.add_cell(CellKind::Or2, &[two_pos, two_neg]);
        // neg = hi & !(mid & lo)   (the 111 pattern encodes digit 0)
        let nand_mid_lo = b.add_cell(CellKind::Nand2, &[b_mid, b_lo]);
        let neg = b.add_cell(CellKind::And2, &[b_hi, nand_mid_lo]);

        // Magnitude row (W+1 bits), conditionally inverted by neg.
        for j in 0..=w {
            let col = 2 * k + j;
            if col >= 2 * w {
                break; // wrap-around arithmetic: bits above 2W-1 vanish
            }
            // raw = one ? a[j] : (two ? a[j-1] : 0) — a mux plus one
            // AND, since `one` and `two` are mutually exclusive.
            let via_two = if j >= 1 {
                b.add_cell(CellKind::And2, &[two, a[j - 1]])
            } else {
                zero
            };
            let raw = if j < w {
                b.add_cell(CellKind::Mux2, &[via_two, a[j], one])
            } else {
                via_two
            };
            let signed = b.add_cell(CellKind::Xor2, &[raw, neg]);
            columns[col].push(signed);
        }
        // Two's-complement +1 at the row's LSB column.
        columns[2 * k].push(neg);
        // Sign-extension trick: the excess of the conditional inversion
        // is s·2^{2k+W+1}; cancel it with ~s·2^c plus the constant
        // −2^c folded into `const_accum` (all mod 2^{2W}).
        let c = 2 * k + w + 1;
        if c < 2 * w {
            let not_neg = b.add_cell(CellKind::Inv, &[neg]);
            columns[c].push(not_neg);
            const_accum = const_accum.wrapping_sub(1u128 << c);
        }
    }
    // Materialise the accumulated constant as tie-high bits.
    let const_bits = const_accum & ((1u128 << (2 * w)) - 1);
    if const_bits != 0 {
        let one = b.add_cell(CellKind::Const1, &[]);
        for (col, column) in columns.iter_mut().enumerate() {
            if (const_bits >> col) & 1 == 1 {
                column.push(one);
            }
        }
    }

    let (row_a, row_b) = reduce_columns(&mut b, columns);
    // Wrap-around addition: drop carries above 2W-1.
    let sum = kogge_stone_adder(&mut b, &row_a[..2 * w], &row_b[..2 * w], None);
    for (k, &s) in sum.iter().take(2 * w).enumerate() {
        b.add_output(format!("p{k}"), s);
    }
    // Same dead-logic invariant as the Table 1 generators: recoding
    // rows above 2W-1 and the adder's top carries are never consumed.
    b.build_pruned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_sim::{verify_product, VerifyOutcome, ZeroDelaySim};

    #[test]
    fn booth4_exhaustive() {
        let nl = booth_radix4(4).unwrap();
        let mut sim = ZeroDelaySim::new(&nl);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_input_bits("a", a);
                sim.set_input_bits("b", b);
                sim.step();
                assert_eq!(sim.output_bits("p"), Some(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn booth8_random() {
        let nl = booth_radix4(8).unwrap();
        match verify_product(&nl, 80, 1, 2, 31) {
            VerifyOutcome::Correct { latency_items } => assert_eq!(latency_items, 0),
            VerifyOutcome::Mismatch(m) => panic!("{m}"),
        }
    }

    #[test]
    fn booth16_random() {
        let nl = booth_radix4(16).unwrap();
        match verify_product(&nl, 80, 1, 2, 32) {
            VerifyOutcome::Correct { latency_items } => assert_eq!(latency_items, 0),
            VerifyOutcome::Mismatch(m) => panic!("{m}"),
        }
    }

    #[test]
    fn booth_edge_operands() {
        // All-ones, powers of two, and zero — the recoding corner cases.
        let nl = booth_radix4(16).unwrap();
        let mut sim = ZeroDelaySim::new(&nl);
        for (a, b) in [
            (0u64, 0u64),
            (0xFFFF, 0xFFFF),
            (0xFFFF, 1),
            (1, 0xFFFF),
            (0x8000, 0x8000),
            (0x8000, 0xFFFF),
            (0x5555, 0xAAAA),
            (0xAAAA, 0xAAAA),
            (3, 0xFFFD),
        ] {
            sim.set_input_bits("a", a);
            sim.set_input_bits("b", b);
            sim.step();
            assert_eq!(sim.output_bits("p"), Some(a * b), "{a:#x}*{b:#x}");
        }
    }

    #[test]
    fn booth_trades_cells_for_recode_depth() {
        // Booth halves the partial-product rows, so it needs markedly
        // fewer cells than the Wallace tree; the recoding chain
        // (recode -> select -> conditional invert) eats back most of
        // the tree-depth saving in a single-rail gate library, leaving
        // the depth comparable (within ~1.3x) rather than shorter.
        use optpower_netlist::Library;
        use optpower_sta::TimingAnalysis;
        let lib = Library::cmos13();
        let booth_nl = booth_radix4(16).unwrap();
        let wallace_nl = crate::wallace::wallace(16).unwrap();
        let booth_n = booth_nl.logic_cell_count();
        let wallace_n = wallace_nl.logic_cell_count();
        assert!(
            (booth_n as f64) < 1.1 * wallace_n as f64,
            "booth {booth_n} cells vs wallace {wallace_n}"
        );
        let booth_d = TimingAnalysis::analyze(&booth_nl, &lib).logical_depth();
        let wallace_d = TimingAnalysis::analyze(&wallace_nl, &lib).logical_depth();
        assert!(
            booth_d < 1.35 * wallace_d,
            "booth depth {booth_d} vs wallace {wallace_d}"
        );
    }

    #[test]
    #[should_panic(expected = "even width")]
    fn booth_rejects_odd_width() {
        let _ = booth_radix4(5);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use optpower_sim::ZeroDelaySim;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Random operands at width 16 always produce a·b.
        #[test]
        fn booth16_multiplies(a in 0u64..=0xFFFF, b in 0u64..=0xFFFF) {
            let nl = booth_radix4(16).unwrap();
            let mut sim = ZeroDelaySim::new(&nl);
            sim.set_input_bits("a", a);
            sim.set_input_bits("b", b);
            sim.step();
            prop_assert_eq!(sim.output_bits("p"), Some(a * b));
        }
    }
}
