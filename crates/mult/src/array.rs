//! The ripple-carry array (RCA) multiplier family: basic, horizontally
//! pipelined and diagonally pipelined (Figures 3 and 4 of the paper).
//!
//! The array computes `p = a × b` as a grid of carry-save rows: row `i`
//! adds partial-product row `pp(i,j) = a_j · b_i` to the running sum,
//! and a final ripple-carry adder resolves the remaining sum/carry
//! vectors — the carry propagation through that chain dominates the
//! logical depth, which is why the paper's transformations target it.
//!
//! Pipelining is expressed as a *stage function* over the grid:
//! horizontal cuts slice between rows (`stage = f(i)`), diagonal cuts
//! slice along anti-diagonals (`stage = f(i + j)`), reproducing the
//! register placements of Figures 3/4 including the operand balancing
//! registers.

use optpower_netlist::{CellKind, NetId, Netlist, NetlistBuilder, NetlistError};

use crate::pipeline::{Pipeliner, Staged};

/// Where the pipeline register cuts run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineStyle {
    /// Cuts between array rows (the paper's Figure 3).
    Horizontal,
    /// Cuts along anti-diagonals (the paper's Figure 4) — shorter
    /// logical depth, wider path-delay spread, more glitches.
    Diagonal,
}

/// Generates the basic (unpipelined) RCA array multiplier.
///
/// The netlist is dead-cone pruned (a no-op here — the array's final
/// ripple chain terminates cleanly), establishing the same no-dead-logic
/// invariant as every other generator.
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation (unreachable for valid
/// widths — the generator is structurally correct by construction).
pub fn rca(width: usize) -> Result<Netlist, NetlistError> {
    rca_builder(width).build_pruned()
}

/// The raw (pre-prune) builder behind [`rca`].
pub(crate) fn rca_builder(width: usize) -> NetlistBuilder {
    rca_pipelined_impl(width, 1, PipelineStyle::Horizontal, "rca")
}

/// Embeds an unpipelined RCA array over existing operand nets and
/// returns the `2·width` product nets — the core used by the
/// parallelisation transform.
///
/// # Panics
///
/// Panics if the operand slices differ in width or are narrower than 2.
pub(crate) fn rca_core(b: &mut NetlistBuilder, a: &[NetId], bb: &[NetId]) -> Vec<NetId> {
    use crate::adders::{full_adder, half_adder};
    assert_eq!(a.len(), bb.len(), "operand widths must match");
    let w = a.len();
    assert!(w >= 2, "multiplier width must be >= 2");

    let pp = |b: &mut NetlistBuilder, i: usize, j: usize, a: &[NetId], bb: &[NetId]| {
        b.add_cell(CellKind::And2, &[a[j], bb[i]])
    };

    let mut product: Vec<Option<NetId>> = vec![None; 2 * w];
    let mut sums: Vec<Option<NetId>> = vec![None; w];
    let mut carries: Vec<Option<NetId>> = vec![None; w];
    product[0] = Some(pp(b, 0, 0, a, bb));
    for j in 1..w {
        sums[j - 1] = Some(pp(b, 0, j, a, bb));
    }
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
    for i in 1..w {
        let mut next_sums: Vec<Option<NetId>> = vec![None; w];
        let mut next_carries: Vec<Option<NetId>> = vec![None; w];
        for j in 0..w {
            let p = pp(b, i, j, a, bb);
            let (s, c) = match (sums[j], carries[j]) {
                (None, None) => (p, None),
                (Some(y), None) | (None, Some(y)) => {
                    let (s, c) = half_adder(b, p, y);
                    (s, Some(c))
                }
                (Some(y), Some(z)) => {
                    let (s, c) = full_adder(b, p, y, z);
                    (s, Some(c))
                }
            };
            if j == 0 {
                product[i] = Some(s);
            } else {
                next_sums[j - 1] = Some(s);
            }
            next_carries[j] = c;
        }
        sums = next_sums;
        carries = next_carries;
    }
    let mut carry: Option<NetId> = None;
    for j in 0..w {
        let mut present: Vec<NetId> = [sums[j], carries[j], carry].into_iter().flatten().collect();
        let (s, c) = match present.len() {
            0 => (b.add_cell(CellKind::Const0, &[]), None),
            1 => (present.pop().expect("len checked"), None),
            2 => {
                let (s, c) = half_adder(b, present[0], present[1]);
                (s, Some(c))
            }
            _ => {
                let (s, c) = full_adder(b, present[0], present[1], present[2]);
                (s, Some(c))
            }
        };
        product[w + j] = Some(s);
        carry = c;
    }
    product
        .into_iter()
        .map(|p| p.expect("all 2w product bits are produced"))
        .collect()
}

/// Generates a pipelined RCA array multiplier with `stages` ≥ 2.
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation.
///
/// # Panics
///
/// Panics if `stages < 2` (use [`rca`] for the unpipelined array) or
/// `width < 2`.
pub fn rca_pipelined(
    width: usize,
    stages: u32,
    style: PipelineStyle,
) -> Result<Netlist, NetlistError> {
    rca_pipelined_builder(width, stages, style).build_pruned()
}

/// The raw (pre-prune) builder behind [`rca_pipelined`].
///
/// # Panics
///
/// Same contract as [`rca_pipelined`].
pub(crate) fn rca_pipelined_builder(
    width: usize,
    stages: u32,
    style: PipelineStyle,
) -> NetlistBuilder {
    assert!(stages >= 2, "pipelined RCA needs >= 2 stages, got {stages}");
    let name = match style {
        PipelineStyle::Horizontal => format!("rca_hpipe{stages}"),
        PipelineStyle::Diagonal => format!("rca_dpipe{stages}"),
    };
    rca_pipelined_impl(width, stages, style, &name)
}

fn rca_pipelined_impl(
    width: usize,
    stages: u32,
    style: PipelineStyle,
    name: &str,
) -> NetlistBuilder {
    assert!(width >= 2, "multiplier width must be >= 2, got {width}");
    let w = width;
    let mut b = NetlistBuilder::new(name);
    let mut pl = Pipeliner::new();

    let a: Vec<Staged> = (0..w)
        .map(|j| Staged::new(b.add_input(format!("a{j}")), 0))
        .collect();
    let bb: Vec<Staged> = (0..w)
        .map(|i| Staged::new(b.add_input(format!("b{i}")), 0))
        .collect();

    // Stage of the cell processing (row i, column j); rows run 0..=w,
    // with row w being the final ripple adder.
    //
    // Horizontal: cuts between rows, as drawn in Figure 3.
    // Diagonal: iso-delay cuts, which in an array run diagonally across
    // the grid, as drawn in Figure 4. They are computed from a dry
    // timing pass (`StageGrid`), cutting the critical path deeper than
    // row cuts while spreading short-path slack — the paper's
    // shorter-LD / more-glitches trade-off.
    let grid = StageGrid::compute(w, stages, style);
    let stage_of = |i: usize, j: usize| -> u32 { grid.stage(i, j) };

    // Partial product at (i, j), with operands balanced to the stage.
    let pp = |b: &mut NetlistBuilder, pl: &mut Pipeliner, i: usize, j: usize| -> Staged {
        let st = stage_of(i, j);
        let aj = pl.at(b, a[j], st);
        let bi = pl.at(b, bb[i], st);
        Staged::new(b.add_cell(CellKind::And2, &[aj, bi]), st)
    };

    let mut product: Vec<Option<Staged>> = vec![None; 2 * w];

    // Row 0: pure partial products.
    let mut sums: Vec<Option<Staged>> = vec![None; w]; // S[j], weight (i+1)+j
    let mut carries: Vec<Option<Staged>> = vec![None; w]; // C[j], weight (i+1)+j
    {
        let p00 = pp(&mut b, &mut pl, 0, 0);
        product[0] = Some(p00);
        for j in 1..w {
            sums[j - 1] = Some(pp(&mut b, &mut pl, 0, j));
        }
    }

    // Rows 1..w-1: carry-save addition of each partial-product row.
    #[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
    for i in 1..w {
        let mut next_sums: Vec<Option<Staged>> = vec![None; w];
        let mut next_carries: Vec<Option<Staged>> = vec![None; w];
        for j in 0..w {
            let st = stage_of(i, j);
            let p = pp(&mut b, &mut pl, i, j);
            let s_in = sums[j];
            let c_in = carries[j];
            let (s, c) = add_three(&mut b, &mut pl, p, s_in, c_in, st);
            if j == 0 {
                product[i] = Some(s);
            } else {
                next_sums[j - 1] = Some(s);
            }
            next_carries[j] = c;
        }
        sums = next_sums;
        carries = next_carries;
    }

    // Final row (index w): ripple-resolve S and C over weights w..2w-1.
    let mut carry: Option<Staged> = None;
    for j in 0..w {
        let st = stage_of(w, j);
        let (s, c) = add_three_opt(&mut b, &mut pl, sums[j], carries[j], carry, st);
        product[w + j] = Some(s);
        carry = c;
    }
    // The product of two w-bit numbers fits in 2w bits, so the final
    // carry (weight 2w) is provably zero and deliberately unconnected.

    // Align all product bits to the last stage and expose them.
    let last_stage = stages.saturating_sub(1);
    for (k, bit) in product.into_iter().enumerate() {
        let bit = bit.expect("all 2w product bits are produced");
        let net = pl.at(&mut b, bit, last_stage);
        b.add_output(format!("p{k}"), net);
    }

    b
}

/// Pipeline-stage assignment for every grid position, computed once
/// per generation.
#[derive(Debug, Clone)]
struct StageGrid {
    /// `stage[i][j]` for rows `0..=w` (row `w` = final adder).
    stage: Vec<Vec<u32>>,
}

impl StageGrid {
    fn stage(&self, i: usize, j: usize) -> u32 {
        self.stage[i][j]
    }

    fn compute(w: usize, stages: u32, style: PipelineStyle) -> Self {
        if stages <= 1 {
            return Self {
                stage: vec![vec![0; w]; w + 1],
            };
        }
        match style {
            PipelineStyle::Horizontal => Self {
                stage: (0..=w)
                    .map(|i| vec![((i as u32) * stages) / (w as u32 + 1); w])
                    .collect(),
            },
            PipelineStyle::Diagonal => Self::iso_delay(w, stages),
        }
    }

    /// Dry timing pass over the unpipelined array using the library
    /// delays, then quantises each cell's arrival time into `stages`
    /// equal-delay bands.
    fn iso_delay(w: usize, stages: u32) -> Self {
        use optpower_netlist::{CellKind as K, Library};
        let lib = Library::cmos13();
        let (d_and, d_xor2, d_and2, d_xor3, d_maj3) = (
            lib.delay(K::And2),
            lib.delay(K::Xor2),
            lib.delay(K::And2),
            lib.delay(K::Xor3),
            lib.delay(K::Maj3),
        );
        // Arrival of the (sum, carry) produced at each grid position.
        let mut arrival = vec![vec![0.0f64; w]; w + 1];
        let mut s_arr: Vec<Option<f64>> = vec![None; w];
        let mut c_arr: Vec<Option<f64>> = vec![None; w];
        // Row 0: pure partial products.
        arrival[0] = vec![d_and; w];
        for j in 1..w {
            s_arr[j - 1] = Some(d_and);
        }
        // Rows 1..w-1: FA/HA depending on available operands.
        #[allow(clippy::needless_range_loop)] // parallel-array indexing is clearer here
        for i in 1..w {
            let mut ns: Vec<Option<f64>> = vec![None; w];
            let mut nc: Vec<Option<f64>> = vec![None; w];
            for j in 0..w {
                let inputs = [Some(d_and), s_arr[j], c_arr[j]];
                let present = inputs.iter().flatten().count();
                let base = inputs.iter().flatten().fold(0.0f64, |m, &v| m.max(v));
                let (out_s, out_c) = match present {
                    1 => (base, None),
                    2 => (base + d_xor2, Some(base + d_and2)),
                    _ => (base + d_xor3, Some(base + d_maj3)),
                };
                arrival[i][j] = out_s.max(out_c.unwrap_or(0.0));
                if j > 0 {
                    ns[j - 1] = Some(out_s);
                }
                nc[j] = out_c;
            }
            s_arr = ns;
            c_arr = nc;
        }
        // Final ripple row.
        let mut carry: Option<f64> = None;
        for j in 0..w {
            let inputs = [s_arr[j], c_arr[j], carry];
            let present = inputs.iter().flatten().count();
            let base = inputs.iter().flatten().fold(0.0f64, |m, &v| m.max(v));
            let (out_s, out_c) = match present {
                0 | 1 => (base, None),
                2 => (base + d_xor2, Some(base + d_and2)),
                _ => (base + d_xor3, Some(base + d_maj3)),
            };
            arrival[w][j] = out_s.max(out_c.unwrap_or(0.0));
            carry = out_c;
        }
        let total = arrival
            .iter()
            .flat_map(|row| row.iter())
            .fold(0.0f64, |m, &v| m.max(v))
            * 1.000_001;
        let stage = arrival
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&t| ((t / total) * f64::from(stages)) as u32)
                    .collect()
            })
            .collect();
        Self { stage }
    }
}

/// Adds a mandatory bit plus up to two optional bits at `stage`,
/// choosing pass-through / half adder / full adder; returns
/// `(sum, carry)` with the carry `None` when none is generated.
fn add_three(
    b: &mut NetlistBuilder,
    pl: &mut Pipeliner,
    x: Staged,
    y: Option<Staged>,
    z: Option<Staged>,
    stage: u32,
) -> (Staged, Option<Staged>) {
    let xn = pl.at(b, x, stage);
    match (y, z) {
        (None, None) => (Staged::new(xn, stage), None),
        (Some(y), None) | (None, Some(y)) => {
            let yn = pl.at(b, y, stage);
            let s = b.add_cell(CellKind::Xor2, &[xn, yn]);
            let c = b.add_cell(CellKind::And2, &[xn, yn]);
            (Staged::new(s, stage), Some(Staged::new(c, stage)))
        }
        (Some(y), Some(z)) => {
            let yn = pl.at(b, y, stage);
            let zn = pl.at(b, z, stage);
            let s = b.add_cell(CellKind::Xor3, &[xn, yn, zn]);
            let c = b.add_cell(CellKind::Maj3, &[xn, yn, zn]);
            (Staged::new(s, stage), Some(Staged::new(c, stage)))
        }
    }
}

/// [`add_three`] where all three operands are optional. A vacuous
/// column produces a constant zero.
fn add_three_opt(
    b: &mut NetlistBuilder,
    pl: &mut Pipeliner,
    x: Option<Staged>,
    y: Option<Staged>,
    z: Option<Staged>,
    stage: u32,
) -> (Staged, Option<Staged>) {
    let mut present: Vec<Staged> = [x, y, z].into_iter().flatten().collect();
    match present.len() {
        0 => {
            let zero = b.add_cell(CellKind::Const0, &[]);
            (Staged::new(zero, stage), None)
        }
        1 => {
            let only = present.pop().expect("len checked");
            let net = pl.at(b, only, stage);
            (Staged::new(net, stage), None)
        }
        2 => add_three(b, pl, present[0], Some(present[1]), None, stage),
        _ => add_three(b, pl, present[0], Some(present[1]), Some(present[2]), stage),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_sim::{verify_product, VerifyOutcome};

    fn assert_multiplies(nl: &Netlist, expected_latency: Option<u32>) {
        match verify_product(nl, 60, 1, 8, 2024) {
            VerifyOutcome::Correct { latency_items } => {
                if let Some(expect) = expected_latency {
                    assert_eq!(latency_items, expect, "{}", nl.name());
                }
            }
            VerifyOutcome::Mismatch(m) => panic!("{}: {m}", nl.name()),
        }
    }

    #[test]
    fn rca4_exhaustive() {
        let nl = rca(4).unwrap();
        let mut sim = optpower_sim::ZeroDelaySim::new(&nl);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_input_bits("a", a);
                sim.set_input_bits("b", b);
                sim.step();
                assert_eq!(sim.output_bits("p"), Some(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn rca8_random() {
        assert_multiplies(&rca(8).unwrap(), Some(0));
    }

    #[test]
    fn rca16_random() {
        assert_multiplies(&rca(16).unwrap(), Some(0));
    }

    #[test]
    fn horizontal_pipeline_2_and_4() {
        assert_multiplies(
            &rca_pipelined(8, 2, PipelineStyle::Horizontal).unwrap(),
            Some(1),
        );
        assert_multiplies(
            &rca_pipelined(8, 4, PipelineStyle::Horizontal).unwrap(),
            Some(3),
        );
        assert_multiplies(
            &rca_pipelined(16, 2, PipelineStyle::Horizontal).unwrap(),
            Some(1),
        );
    }

    #[test]
    fn diagonal_pipeline_2_and_4() {
        assert_multiplies(
            &rca_pipelined(8, 2, PipelineStyle::Diagonal).unwrap(),
            Some(1),
        );
        assert_multiplies(
            &rca_pipelined(8, 4, PipelineStyle::Diagonal).unwrap(),
            Some(3),
        );
        assert_multiplies(
            &rca_pipelined(16, 2, PipelineStyle::Diagonal).unwrap(),
            Some(1),
        );
    }

    #[test]
    fn pipelining_adds_registers() {
        let base = rca(16).unwrap();
        let h2 = rca_pipelined(16, 2, PipelineStyle::Horizontal).unwrap();
        let h4 = rca_pipelined(16, 4, PipelineStyle::Horizontal).unwrap();
        assert_eq!(base.dff_count(), 0);
        assert!(h2.dff_count() > 0);
        assert!(h4.dff_count() > h2.dff_count());
    }

    #[test]
    fn pipelining_shortens_logical_depth() {
        use optpower_netlist::Library;
        use optpower_sta::TimingAnalysis;
        let lib = Library::cmos13();
        let ld = |nl: &Netlist| TimingAnalysis::analyze(nl, &lib).logical_depth();
        let base = ld(&rca(16).unwrap());
        let h2 = ld(&rca_pipelined(16, 2, PipelineStyle::Horizontal).unwrap());
        let h4 = ld(&rca_pipelined(16, 4, PipelineStyle::Horizontal).unwrap());
        let d2 = ld(&rca_pipelined(16, 2, PipelineStyle::Diagonal).unwrap());
        assert!(h2 < base && h4 < h2, "base {base} h2 {h2} h4 {h4}");
        assert!(d2 < base, "base {base} d2 {d2}");
    }

    #[test]
    fn diagonal_cuts_deeper_than_horizontal() {
        // The paper: diagonal pipelining shortens the critical path
        // *more* than horizontal at the same stage count.
        use optpower_netlist::Library;
        use optpower_sta::TimingAnalysis;
        let lib = Library::cmos13();
        let ld = |nl: &Netlist| TimingAnalysis::analyze(nl, &lib).logical_depth();
        let h2 = ld(&rca_pipelined(16, 2, PipelineStyle::Horizontal).unwrap());
        let d2 = ld(&rca_pipelined(16, 2, PipelineStyle::Diagonal).unwrap());
        assert!(d2 < h2, "h2 {h2} d2 {d2}");
    }

    #[test]
    fn cell_count_scale_matches_paper() {
        // Paper Table 1: RCA = 608 cells with FA-level cells; our
        // decomposition (FA = Xor3 + Maj3) lands in the same order of
        // magnitude.
        let nl = rca(16).unwrap();
        let n = nl.logic_cell_count();
        assert!(n > 500 && n < 1200, "N = {n}");
    }

    #[test]
    #[should_panic(expected = ">= 2 stages")]
    fn pipelined_requires_stages() {
        let _ = rca_pipelined(8, 1, PipelineStyle::Horizontal);
    }
}
