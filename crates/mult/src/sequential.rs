//! The sequential multiplier family: add-and-shift (basic), the 4×16
//! Wallace variant (4 partial products per cycle), and the 2-way
//! interleaved parallel version.
//!
//! The basic design computes `a × b` in `W` internal clock cycles with
//! a single adder: each cycle adds `(b_k ? a : 0)` into the top half of
//! a `2W`-bit accumulator and shifts right by one. The internal clock
//! runs `W×` faster than the data clock, which is why Table 1 reports
//! an activity far above 1 and an enormous effective logical depth for
//! this family.

use optpower_netlist::{CellKind, NetId, Netlist, NetlistBuilder, NetlistError};

use crate::adders::{kogge_stone_adder, reduce_columns};

/// Creates a flip-flop whose D input will be wired later (forward
/// reference pattern for state feedback). The provisional input is
/// `dummy`; call [`drive_flop`] before `build`.
fn new_flop(b: &mut NetlistBuilder, dummy: NetId) -> NetId {
    b.add_cell(CellKind::Dff, &[dummy])
}

/// Connects a flip-flop's D input, optionally wrapped in a
/// recirculating enable mux (`en = 0` holds the current value).
fn drive_flop(b: &mut NetlistBuilder, q: NetId, d: NetId, en: Option<NetId>) {
    let d_final = match en {
        Some(en) => b.add_cell(CellKind::Mux2, &[q, d, en]),
        None => d,
    };
    b.rewire(q, 0, d_final);
}

/// A free-running modulo-2^bits counter with synchronous reset to
/// `reset_value` and optional clock-enable. Returns the Q bits
/// (LSB first).
fn counter(
    b: &mut NetlistBuilder,
    bits: u32,
    rst: NetId,
    not_rst: NetId,
    reset_value: u32,
    en: Option<NetId>,
) -> Vec<NetId> {
    let q: Vec<NetId> = (0..bits).map(|_| new_flop(b, rst)).collect();
    // Increment chain.
    let mut inc = Vec::with_capacity(bits as usize);
    let mut carry: Option<NetId> = None;
    for (i, &qi) in q.iter().enumerate() {
        match carry {
            None => {
                inc.push(b.add_cell(CellKind::Inv, &[qi]));
                carry = Some(qi);
                let _ = i;
            }
            Some(c) => {
                inc.push(b.add_cell(CellKind::Xor2, &[qi, c]));
                carry = Some(b.add_cell(CellKind::And2, &[qi, c]));
            }
        }
    }
    // Synchronous reset forcing `reset_value`, applied after the
    // enable so reset always wins.
    for i in 0..bits as usize {
        let stepped = match en {
            Some(en) => b.add_cell(CellKind::Mux2, &[q[i], inc[i], en]),
            None => inc[i],
        };
        let masked = b.add_cell(CellKind::And2, &[stepped, not_rst]);
        let d = if (reset_value >> i) & 1 == 1 {
            b.add_cell(CellKind::Or2, &[masked, rst])
        } else {
            masked
        };
        // Reset is already folded in; don't double-wrap with enable.
        b.rewire(q[i], 0, d);
    }
    q
}

/// `AND` tree over a slice (returns the slice's single net for len 1).
fn and_tree(b: &mut NetlistBuilder, nets: &[NetId]) -> NetId {
    assert!(!nets.is_empty());
    let mut level = nets.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(match pair {
                [x, y] => b.add_cell(CellKind::And2, &[*x, *y]),
                [x] => *x,
                _ => unreachable!("chunks(2)"),
            });
        }
        level = next;
    }
    level[0]
}

/// `NOR`-style zero detector: `1` iff every net is `0`.
fn is_zero(b: &mut NetlistBuilder, nets: &[NetId]) -> NetId {
    assert!(!nets.is_empty());
    let mut level = nets.to_vec();
    while level.len() > 1 {
        let mut next = Vec::with_capacity(level.len().div_ceil(2));
        for pair in level.chunks(2) {
            next.push(match pair {
                [x, y] => b.add_cell(CellKind::Or2, &[*x, *y]),
                [x] => *x,
                _ => unreachable!("chunks(2)"),
            });
        }
        level = next;
    }
    b.add_cell(CellKind::Inv, &[level[0]])
}

/// One add-and-shift core; returns the `2W`-bit product register.
///
/// `reset_count` staggers interleaved cores (the parallel variant);
/// `en` is the optional clock-enable gating every state element.
fn seq_core(
    b: &mut NetlistBuilder,
    a_in: &[NetId],
    b_in: &[NetId],
    rst: NetId,
    not_rst: NetId,
    en: Option<NetId>,
    reset_count: u32,
) -> Vec<NetId> {
    let w = a_in.len();
    assert!(
        w.is_power_of_two() && w >= 4,
        "seq core needs power-of-two width >= 4"
    );
    let cb = w.trailing_zeros();

    let count = counter(b, cb, rst, not_rst, reset_count, en);
    let load = is_zero(b, &count);
    let not_load = b.add_cell(CellKind::Inv, &[load]);
    let last = and_tree(b, &count);

    // Operand register with load-bypass: the load cycle already uses
    // the fresh operand.
    let a_reg: Vec<NetId> = (0..w).map(|_| new_flop(b, rst)).collect();
    let a_used: Vec<NetId> = (0..w)
        .map(|j| b.add_cell(CellKind::Mux2, &[a_reg[j], a_in[j], load]))
        .collect();
    for j in 0..w {
        drive_flop(b, a_reg[j], a_used[j], en);
    }

    // Multiplier shift register holds the pending bits b[1..w].
    let b_reg: Vec<NetId> = (0..w - 1).map(|_| new_flop(b, rst)).collect();
    let m = b.add_cell(CellKind::Mux2, &[b_reg[0], b_in[0], load]);
    for j in 0..w - 1 {
        let d = if j + 1 < w - 1 {
            b.add_cell(CellKind::Mux2, &[b_reg[j + 1], b_in[j + 1], load])
        } else {
            // The top pending slot refills only at load (with b[w-1]).
            b.add_cell(CellKind::And2, &[b_in[w - 1], load])
        };
        drive_flop(b, b_reg[j], d, en);
    }

    // Accumulator: acc' = (acc + m·a·2^w) >> 1, cleared at load.
    let acc: Vec<NetId> = (0..2 * w).map(|_| new_flop(b, rst)).collect();
    let addend: Vec<NetId> = (0..w)
        .map(|j| b.add_cell(CellKind::And2, &[a_used[j], m]))
        .collect();
    let acc_high_gated: Vec<NetId> = (0..w)
        .map(|j| b.add_cell(CellKind::And2, &[acc[w + j], not_load]))
        .collect();
    // The internal clock runs `w x` the data clock (500 MHz for the
    // paper's 16-bit case), so the per-step adder must be fast: a
    // Kogge-Stone carry-propagate adder, not a ripple chain.
    let sum = kogge_stone_adder(b, &acc_high_gated, &addend, None); // w + 1 bits
    let mut acc_d = Vec::with_capacity(2 * w);
    for j in 0..2 * w {
        let d = if j < w - 1 {
            b.add_cell(CellKind::And2, &[acc[j + 1], not_load])
        } else {
            sum[j - (w - 1)]
        };
        acc_d.push(d);
        drive_flop(b, acc[j], d, en);
    }

    // Product register: captures the completed accumulator at the last
    // step and holds it for a full data period.
    let p_reg: Vec<NetId> = (0..2 * w).map(|_| new_flop(b, rst)).collect();
    for j in 0..2 * w {
        let d = b.add_cell(CellKind::Mux2, &[p_reg[j], acc_d[j], last]);
        drive_flop(b, p_reg[j], d, en);
    }
    p_reg
}

/// The basic add-and-shift sequential multiplier (`W` internal cycles
/// per product; internal clock = `W ×` data clock).
///
/// Inputs: `a`, `b` operand buses plus a 1-bit `rst` bus that must be
/// held high for the first data item.
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation.
///
/// The netlist is dead-cone pruned: the counter's final increment
/// carry and the accumulator's never-read LSB flop are removed.
///
/// # Panics
///
/// Panics unless `width` is a power of two ≥ 4.
pub fn sequential(width: usize) -> Result<Netlist, NetlistError> {
    sequential_builder(width).build_pruned()
}

/// The raw (pre-prune) builder behind [`sequential`].
///
/// # Panics
///
/// Same contract as [`sequential`].
pub(crate) fn sequential_builder(width: usize) -> NetlistBuilder {
    let mut b = NetlistBuilder::new("sequential");
    let a_in: Vec<NetId> = (0..width).map(|j| b.add_input(format!("a{j}"))).collect();
    let b_in: Vec<NetId> = (0..width).map(|i| b.add_input(format!("b{i}"))).collect();
    let rst = b.add_input("rst0");
    let not_rst = b.add_cell(CellKind::Inv, &[rst]);
    let p = seq_core(&mut b, &a_in, &b_in, rst, not_rst, None, 0);
    for (k, q) in p.into_iter().enumerate() {
        b.add_output(format!("p{k}"), q);
    }
    b
}

/// The "4_16 Wallace" sequential multiplier: adds **four** partial
/// products per cycle through a small Wallace (CSA) tree, finishing a
/// 16-bit product in 4 internal cycles instead of 16 (Section 4).
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation.
///
/// # Panics
///
/// Panics unless `width` is a multiple of 4, a power of two, ≥ 8.
pub fn sequential_4_wallace(width: usize) -> Result<Netlist, NetlistError> {
    sequential_4_wallace_builder(width).build_pruned()
}

/// The raw (pre-prune) builder behind [`sequential_4_wallace`].
///
/// # Panics
///
/// Same contract as [`sequential_4_wallace`].
pub(crate) fn sequential_4_wallace_builder(width: usize) -> NetlistBuilder {
    const NIB: usize = 4;
    assert!(
        width.is_multiple_of(NIB) && width.is_power_of_two() && width >= 8,
        "4_16-style core needs power-of-two width >= 8"
    );
    let w = width;
    let steps = w / NIB; // internal cycles per product
    let cb = steps.trailing_zeros();
    let acc_w = 2 * w + 1; // one headroom bit for mid-computation sums

    let mut b = NetlistBuilder::new("seq4_16");
    let a_in: Vec<NetId> = (0..w).map(|j| b.add_input(format!("a{j}"))).collect();
    let b_in: Vec<NetId> = (0..w).map(|i| b.add_input(format!("b{i}"))).collect();
    let rst = b.add_input("rst0");
    let not_rst = b.add_cell(CellKind::Inv, &[rst]);

    let count = counter(&mut b, cb, rst, not_rst, 0, None);
    let load = is_zero(&mut b, &count);
    let not_load = b.add_cell(CellKind::Inv, &[load]);
    let last = and_tree(&mut b, &count);

    let a_reg: Vec<NetId> = (0..w).map(|_| new_flop(&mut b, rst)).collect();
    let a_used: Vec<NetId> = (0..w)
        .map(|j| b.add_cell(CellKind::Mux2, &[a_reg[j], a_in[j], load]))
        .collect();
    for j in 0..w {
        drive_flop(&mut b, a_reg[j], a_used[j], None);
    }

    // Pending multiplier bits b[NIB..w], shifting down NIB per cycle.
    let b_reg: Vec<NetId> = (0..w - NIB).map(|_| new_flop(&mut b, rst)).collect();
    let m_nib: Vec<NetId> = (0..NIB)
        .map(|k| b.add_cell(CellKind::Mux2, &[b_reg[k], b_in[k], load]))
        .collect();
    for j in 0..w - NIB {
        let d = if j + NIB < w - NIB {
            b.add_cell(CellKind::Mux2, &[b_reg[j + NIB], b_in[j + NIB], load])
        } else {
            b.add_cell(CellKind::And2, &[b_in[j + NIB], load])
        };
        drive_flop(&mut b, b_reg[j], d, None);
    }

    // acc' = (acc + (Σ_k m_k·a·2^k)·2^w) >> NIB.
    let acc: Vec<NetId> = (0..acc_w).map(|_| new_flop(&mut b, rst)).collect();
    // Columns of the per-cycle addition: acc[w..] plus 4 pp rows.
    let addend_w = w + NIB; // partial sums span weights 0..w+NIB-1
    let sum_w = addend_w + 1;
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); sum_w];
    for (t, col) in columns.iter_mut().enumerate().take(acc_w - w) {
        let gated = b.add_cell(CellKind::And2, &[acc[w + t], not_load]);
        col.push(gated);
    }
    for (k, &m) in m_nib.iter().enumerate() {
        for j in 0..w {
            let pp = b.add_cell(CellKind::And2, &[a_used[j], m]);
            columns[k + j].push(pp);
        }
    }
    let (row_a, row_b) = reduce_columns(&mut b, columns);
    let sum = kogge_stone_adder(&mut b, &row_a, &row_b, None);

    let mut acc_d = Vec::with_capacity(acc_w);
    for j in 0..acc_w {
        let d = if j < w - NIB {
            b.add_cell(CellKind::And2, &[acc[j + NIB], not_load])
        } else {
            sum[j - (w - NIB)]
        };
        acc_d.push(d);
        drive_flop(&mut b, acc[j], d, None);
    }

    let p_reg: Vec<NetId> = (0..2 * w).map(|_| new_flop(&mut b, rst)).collect();
    for j in 0..2 * w {
        let d = b.add_cell(CellKind::Mux2, &[p_reg[j], acc_d[j], last]);
        drive_flop(&mut b, p_reg[j], d, None);
        b.add_output(format!("p{j}"), p_reg[j]);
    }
    b
}

/// Two interleaved add-and-shift cores sharing the input buses:
/// each core receives every other data item and advances on alternate
/// internal cycles, so its per-step timing budget doubles ("additional
/// clock cycles at its disposal relaxing timing constraints").
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation.
///
/// # Panics
///
/// Panics unless `width` is a power of two ≥ 4.
pub fn sequential_parallel(width: usize) -> Result<Netlist, NetlistError> {
    sequential_parallel_builder(width).build_pruned()
}

/// The raw (pre-prune) builder behind [`sequential_parallel`].
///
/// # Panics
///
/// Same contract as [`sequential_parallel`].
pub(crate) fn sequential_parallel_builder(width: usize) -> NetlistBuilder {
    let w = width;
    let mut b = NetlistBuilder::new("seq_parallel");
    let a_in: Vec<NetId> = (0..w).map(|j| b.add_input(format!("a{j}"))).collect();
    let b_in: Vec<NetId> = (0..w).map(|i| b.add_input(format!("b{i}"))).collect();
    let rst = b.add_input("rst0");
    let not_rst = b.add_cell(CellKind::Inv, &[rst]);

    // Phase bit: selects which core advances this cycle.
    let phase = counter(&mut b, 1, rst, not_rst, 0, None)[0];
    let en_a = b.add_cell(CellKind::Inv, &[phase]);
    let en_b = phase;

    // Core A takes items starting at its counter's natural zero; core
    // B is staggered by half a counter revolution (one data period).
    let p_a = seq_core(&mut b, &a_in, &b_in, rst, not_rst, Some(en_a), 0);
    let p_b = seq_core(
        &mut b,
        &a_in,
        &b_in,
        rst,
        not_rst,
        Some(en_b),
        (w / 2) as u32,
    );

    // Select whichever product register currently holds the item that
    // completes the 2-item latency pattern: the MSB of core A's step
    // counter tracks data-item parity (it advances every other cycle).
    // Reconstruct it cheaply: a dedicated item-parity flop toggling
    // every w internal cycles via core-A's load pulse is equivalent,
    // but the simplest faithful signal is a divided counter.
    let cb = w.trailing_zeros() + 1; // counts 0..2w-1 over two items
    let item_ctr = counter(&mut b, cb, rst, not_rst, 0, None);
    let sel = item_ctr[cb as usize - 1]; // toggles once per data item

    for j in 0..2 * w {
        let o = b.add_cell(CellKind::Mux2, &[p_a[j], p_b[j], sel]);
        b.add_output(format!("p{j}"), o);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_sim::{verify_product, VerifyOutcome};

    fn assert_multiplies(nl: &Netlist, cycles_per_item: u32) {
        match verify_product(nl, 40, cycles_per_item, 4, 99) {
            VerifyOutcome::Correct { latency_items } => {
                assert!(
                    latency_items >= 1,
                    "{}: sequential results are registered",
                    nl.name()
                );
            }
            VerifyOutcome::Mismatch(m) => panic!("{}: {m}", nl.name()),
        }
    }

    #[test]
    fn sequential_8_multiplies() {
        assert_multiplies(&sequential(8).unwrap(), 8);
    }

    #[test]
    fn sequential_16_multiplies() {
        assert_multiplies(&sequential(16).unwrap(), 16);
    }

    #[test]
    fn seq4_wallace_8_multiplies() {
        assert_multiplies(&sequential_4_wallace(8).unwrap(), 2);
    }

    #[test]
    fn seq4_wallace_16_multiplies() {
        assert_multiplies(&sequential_4_wallace(16).unwrap(), 4);
    }

    #[test]
    fn seq_parallel_16_multiplies() {
        assert_multiplies(&sequential_parallel(16).unwrap(), 16);
    }

    #[test]
    fn sequential_is_compact() {
        // The whole point: far fewer cells than the array multiplier.
        let seq = sequential(16).unwrap().logic_cell_count();
        let arr = crate::array::rca(16).unwrap().logic_cell_count();
        assert!(seq < arr, "seq {seq} vs array {arr}");
    }

    #[test]
    fn seq4_needs_fewer_cycles_but_more_cells() {
        let s1 = sequential(16).unwrap().logic_cell_count();
        let s4 = sequential_4_wallace(16).unwrap().logic_cell_count();
        assert!(s4 > s1, "s4 {s4} vs s1 {s1}");
    }

    #[test]
    fn seq_parallel_doubles_state() {
        let s1 = sequential(16).unwrap().dff_count();
        let sp = sequential_parallel(16).unwrap().dff_count();
        assert!(sp > 2 * s1 - 10, "sp {sp} vs s1 {s1}");
    }
}
