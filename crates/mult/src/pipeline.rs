//! Stage-tracked pipeline construction.
//!
//! Pipelined generators tag every signal with the pipeline stage it
//! belongs to; combining signals from different stages inserts
//! balancing flip-flops. The [`Pipeliner`] caches delayed versions of
//! each net so a signal consumed by many cells in a later stage is
//! registered once, not once per consumer — matching how registers are
//! drawn across the arrays in the paper's Figures 3 and 4.

use std::collections::HashMap;

use optpower_netlist::{CellKind, NetId, NetlistBuilder};

/// A net tagged with the pipeline stage its value belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Staged {
    /// The carrying net.
    pub net: NetId,
    /// Pipeline stage (0 = before the first register cut).
    pub stage: u32,
}

impl Staged {
    /// Tags `net` as belonging to `stage`.
    pub fn new(net: NetId, stage: u32) -> Self {
        Self { net, stage }
    }
}

/// Inserts and caches stage-balancing flip-flops.
#[derive(Debug, Default)]
pub struct Pipeliner {
    /// `(source net, target stage) → delayed net`.
    cache: HashMap<(NetId, u32), NetId>,
    registers_inserted: usize,
}

impl Pipeliner {
    /// Creates an empty pipeliner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of balancing DFFs inserted so far.
    pub fn registers_inserted(&self) -> usize {
        self.registers_inserted
    }

    /// Returns `sig`'s net as seen in `target` stage, inserting
    /// `target − sig.stage` flip-flops (cached and shared).
    ///
    /// # Panics
    ///
    /// Panics if `target < sig.stage` — data cannot travel backwards
    /// through a pipeline; that is a generator staging bug.
    pub fn at(&mut self, b: &mut NetlistBuilder, sig: Staged, target: u32) -> NetId {
        assert!(
            target >= sig.stage,
            "cannot move a stage-{} signal back to stage {target}",
            sig.stage
        );
        let mut net = sig.net;
        for s in sig.stage..target {
            let key = (net, s + 1);
            net = match self.cache.get(&key) {
                Some(&delayed) => delayed,
                None => {
                    let q = b.add_cell(CellKind::Dff, &[net]);
                    self.registers_inserted += 1;
                    self.cache.insert(key, q);
                    q
                }
            };
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stage_is_identity() {
        let mut b = NetlistBuilder::new("t");
        let x = b.add_input("x0");
        let mut p = Pipeliner::new();
        let out = p.at(&mut b, Staged::new(x, 0), 0);
        assert_eq!(out, x);
        assert_eq!(p.registers_inserted(), 0);
    }

    #[test]
    fn inserts_one_dff_per_stage() {
        let mut b = NetlistBuilder::new("t");
        let x = b.add_input("x0");
        let mut p = Pipeliner::new();
        let _ = p.at(&mut b, Staged::new(x, 0), 3);
        assert_eq!(p.registers_inserted(), 3);
    }

    #[test]
    fn chains_are_shared_between_consumers() {
        let mut b = NetlistBuilder::new("t");
        let x = b.add_input("x0");
        let mut p = Pipeliner::new();
        let d2 = p.at(&mut b, Staged::new(x, 0), 2);
        let d2_again = p.at(&mut b, Staged::new(x, 0), 2);
        let d3 = p.at(&mut b, Staged::new(x, 0), 3);
        assert_eq!(d2, d2_again);
        assert_ne!(d2, d3);
        // 2 DFFs for stage 2, 1 more extending to stage 3.
        assert_eq!(p.registers_inserted(), 3);
    }

    #[test]
    #[should_panic(expected = "cannot move")]
    fn backward_staging_is_a_bug() {
        let mut b = NetlistBuilder::new("t");
        let x = b.add_input("x0");
        let mut p = Pipeliner::new();
        let _ = p.at(&mut b, Staged::new(x, 2), 1);
    }
}
