//! The Wallace-tree multiplier: carry-save column compression of all
//! partial products followed by a fast (Kogge–Stone) carry-propagate
//! adder. "Path delays are better balanced than in RCA, resulting in
//! an overall faster architecture" (Section 4).

use optpower_netlist::{CellKind, NetId, Netlist, NetlistBuilder, NetlistError};

use crate::adders::{kogge_stone_adder, reduce_columns};

/// Generates a `width × width` Wallace-tree multiplier.
///
/// The netlist is dead-cone pruned: the Kogge–Stone final adder's
/// unconsumed top-level propagate cells (and any other logic that
/// cannot reach a product bit) are removed, so the design lints clean
/// and the power model charges only cells that can toggle an output.
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation.
///
/// # Panics
///
/// Panics if `width < 2`.
pub fn wallace(width: usize) -> Result<Netlist, NetlistError> {
    wallace_builder(width).build_pruned()
}

/// The raw (pre-prune) builder behind [`wallace`], kept separate so
/// [`crate::Architecture::generate_raw`] can reproduce the as-emitted
/// netlist for before/after comparisons.
///
/// # Panics
///
/// Panics if `width < 2`.
pub(crate) fn wallace_builder(width: usize) -> NetlistBuilder {
    assert!(width >= 2, "multiplier width must be >= 2, got {width}");
    let w = width;
    let mut b = NetlistBuilder::new("wallace");
    let a: Vec<NetId> = (0..w).map(|j| b.add_input(format!("a{j}"))).collect();
    let bb: Vec<NetId> = (0..w).map(|i| b.add_input(format!("b{i}"))).collect();
    let product = wallace_core(&mut b, &a, &bb);
    for (k, net) in product.into_iter().enumerate() {
        b.add_output(format!("p{k}"), net);
    }
    b
}

/// Embeds a Wallace-tree multiplier over existing operand nets and
/// returns the `2·width` product nets — the core used by the
/// parallelisation transform.
///
/// # Panics
///
/// Panics if the operand slices differ in width or are narrower than 2.
pub(crate) fn wallace_core(b: &mut NetlistBuilder, a: &[NetId], bb: &[NetId]) -> Vec<NetId> {
    assert_eq!(a.len(), bb.len(), "operand widths must match");
    let w = a.len();
    assert!(w >= 2, "multiplier width must be >= 2");

    // All partial products, binned by weight.
    let mut columns: Vec<Vec<NetId>> = vec![Vec::new(); 2 * w];
    for i in 0..w {
        for j in 0..w {
            let pp = b.add_cell(CellKind::And2, &[a[j], bb[i]]);
            columns[i + j].push(pp);
        }
    }
    // Weight 2w-1 has no partial product; trim the empty tail so the
    // reduction does not carry a ghost column.
    while columns.last().is_some_and(Vec::is_empty) {
        columns.pop();
    }

    // CSA tree to two rows, then one fast carry-propagate addition.
    let (row_a, row_b) = reduce_columns(b, columns);
    let sum = kogge_stone_adder(b, &row_a, &row_b, None);

    (0..(2 * w))
        .map(|k| {
            sum.get(k).copied().unwrap_or_else(|| {
                // Width 2 edge case: the tree is narrower than 2w.
                b.add_cell(CellKind::Const0, &[])
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use optpower_sim::{verify_product, VerifyOutcome, ZeroDelaySim};

    #[test]
    fn wallace4_exhaustive() {
        let nl = wallace(4).unwrap();
        let mut sim = ZeroDelaySim::new(&nl);
        for a in 0..16u64 {
            for b in 0..16u64 {
                sim.set_input_bits("a", a);
                sim.set_input_bits("b", b);
                sim.step();
                assert_eq!(sim.output_bits("p"), Some(a * b), "{a}*{b}");
            }
        }
    }

    #[test]
    fn wallace16_random() {
        let nl = wallace(16).unwrap();
        match verify_product(&nl, 60, 1, 2, 77) {
            VerifyOutcome::Correct { latency_items } => assert_eq!(latency_items, 0),
            VerifyOutcome::Mismatch(m) => panic!("{m}"),
        }
    }

    #[test]
    fn wallace_is_much_shallower_than_rca() {
        // The paper's Table 1: LD 17 (Wallace) vs 61 (RCA) — about 3.5×.
        use optpower_netlist::Library;
        use optpower_sta::TimingAnalysis;
        let lib = Library::cmos13();
        let wl = TimingAnalysis::analyze(&wallace(16).unwrap(), &lib).logical_depth();
        let rc = TimingAnalysis::analyze(&crate::array::rca(16).unwrap(), &lib).logical_depth();
        // Our FA-decomposed cells and Kogge-Stone final adder give a
        // ~0.6 ratio (the paper's custom cells reach 17/61 ≈ 0.28);
        // the ordering — the architectural claim — is what matters.
        assert!(wl < rc * 0.7, "wallace {wl} vs rca {rc}");
    }

    #[test]
    fn wallace_cell_count_same_order_as_rca() {
        // Paper: Wallace 729 vs RCA 608 cells — same order, slightly more.
        let wn = wallace(16).unwrap().logic_cell_count();
        let rn = crate::array::rca(16).unwrap().logic_cell_count();
        assert!(
            wn as f64 / rn as f64 > 0.7 && (wn as f64 / rn as f64) < 2.0,
            "wallace {wn} vs rca {rn}"
        );
    }

    #[test]
    fn wallace_has_no_registers() {
        assert_eq!(wallace(16).unwrap().dff_count(), 0);
    }
}
