//! Acceptance suite of the `optpower serve` job service, driven over
//! real sockets:
//!
//! * **byte identity** — the JSON artifact served over HTTP, with its
//!   `meta` object stripped, is byte-identical to a direct
//!   [`Runtime`] run's `payload_json()`; CSV negotiation matches
//!   `to_csv()` exactly;
//! * **content-addressed cache** — resubmitting the same job (even
//!   respelled: permuted keys, different float spelling) is served
//!   from the cache with `X-Optpower-Cache: hit` and `meta.cache`
//!   set, without taking a queue slot;
//! * **backpressure** — a full admission queue answers
//!   `429 queue_full` with `Retry-After`, deterministically (the
//!   server starts with paused executors);
//! * **the frozen error surface** — bad specs, bad paths, bad
//!   methods and bad `Accept` headers map to the documented
//!   status/code pairs;
//! * **graceful shutdown** — `POST /v1/shutdown` drains: admission
//!   flips to `503 draining` and `join()` returns.

use std::time::Duration;

use optpower_explore::Workers;
use optpower_serve::{client, Config};
use optpower_workload::{JobSpec, Json, Runtime};

const TIMEOUT: Duration = Duration::from_secs(30);

fn get(addr: &str, target: &str) -> client::HttpReply {
    client::request(addr, "GET", target, &[], b"", TIMEOUT).expect("GET")
}

fn post(addr: &str, target: &str, accept: &str, body: &str) -> client::HttpReply {
    client::request(
        addr,
        "POST",
        target,
        &[("Accept", accept)],
        body.as_bytes(),
        TIMEOUT,
    )
    .expect("POST")
}

/// Polls `GET /v1/jobs/<key>` until the artifact document appears.
fn poll_until_done(addr: &str, key: &str) -> client::HttpReply {
    for _ in 0..600 {
        let reply = get(addr, &format!("/v1/jobs/{key}"));
        assert_eq!(reply.status, 200, "job {key}: {}", reply.body_text());
        if reply
            .body_text()
            .contains("\"schema\":\"optpower-workload/v1\"")
        {
            return reply;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!("job {key} did not reach a terminal state");
}

/// Parses a served JSON artifact, drops the top-level `meta` pair,
/// and re-serializes — the deterministic payload document, byte-
/// stable because the `Json` writer round-trips exactly.
fn strip_meta(body: &str) -> String {
    let Json::Obj(pairs) = Json::parse(body).expect("served artifact parses") else {
        panic!("served artifact is not a JSON object");
    };
    let stripped: Vec<(String, Json)> = pairs.into_iter().filter(|(k, _)| k != "meta").collect();
    Json::Obj(stripped).to_string()
}

/// The `meta.cache` label of a served JSON artifact.
fn meta_cache_of(body: &str) -> Option<String> {
    Json::parse(body)
        .ok()?
        .get("meta")?
        .get("cache")?
        .as_str()
        .map(str::to_string)
}

#[test]
fn serve_api_contract_end_to_end() {
    let handle = optpower_serve::start(Config {
        addr: "127.0.0.1:0".to_string(),
        queue_capacity: 2,
        executors: 2,
        workers: Workers::Fixed(2),
        start_paused: true,
        ..Config::default()
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    assert_eq!(
        get(&addr, "/healthz").body_text(),
        r#"{"ok":true,"state":"running"}"#
    );

    // --- Backpressure, deterministically: executors are paused, so
    // two async submissions fill the queue and the third bounces.
    let queued_a = r#"{"job":"figure1","samples":3}"#;
    let queued_b = r#"{"job":"figure2","samples":3}"#;
    let mut keys = Vec::new();
    for body in [queued_a, queued_b] {
        let reply = post(&addr, "/v1/jobs?mode=async", "application/json", body);
        assert_eq!(reply.status, 202, "{}", reply.body_text());
        let expected_key = JobSpec::from_json(body).unwrap().canonical_key();
        assert_eq!(reply.header("x-optpower-key"), Some(expected_key.as_str()));
        assert!(reply
            .body_text()
            .contains("\"schema\":\"optpower-job-status/v1\""));
        keys.push(expected_key);
    }
    let overflow_body = r#"{"job":"figure2","samples":5}"#;
    let overflow = post(
        &addr,
        "/v1/jobs?mode=async",
        "application/json",
        overflow_body,
    );
    assert_eq!(overflow.status, 429, "{}", overflow.body_text());
    assert_eq!(overflow.header("retry-after"), Some("1"));
    assert!(overflow.body_text().contains("\"code\":\"queue_full\""));
    // The bounced admission was rolled back: the key is not tracked.
    let overflow_key = JobSpec::from_json(overflow_body).unwrap().canonical_key();
    assert_eq!(get(&addr, &format!("/v1/jobs/{overflow_key}")).status, 404);

    let metrics = Json::parse(&get(&addr, "/metrics").body_text()).expect("metrics parse");
    assert_eq!(metrics.get("queue_depth").and_then(Json::as_u64), Some(2));
    assert_eq!(
        metrics.get("rejected_queue_full").and_then(Json::as_u64),
        Some(1)
    );

    // --- Release the executors; both queued jobs complete.
    handle.resume();
    for key in &keys {
        poll_until_done(&addr, key);
    }

    // --- Byte identity of a synchronous Batch submission.
    let batch_wire = r#"{"job":"batch","jobs":[{"job":"table2"},{"job":"figure2","samples":4}]}"#;
    let spec = JobSpec::from_json(batch_wire).unwrap();
    let direct = Runtime::new(Workers::Fixed(2))
        .run(&spec)
        .expect("direct run");

    let served = post(&addr, "/v1/jobs", "application/json", batch_wire);
    assert_eq!(served.status, 200, "{}", served.body_text());
    assert_eq!(served.header("x-optpower-cache"), Some("miss"));
    assert_eq!(
        served.header("x-optpower-key"),
        Some(spec.canonical_key().as_str())
    );
    assert_eq!(served.header("content-type"), Some("application/json"));
    assert_eq!(meta_cache_of(&served.body_text()).as_deref(), Some("miss"));
    assert_eq!(
        strip_meta(&served.body_text()),
        direct.payload_json(),
        "HTTP-served JSON artifact must be byte-identical to direct execution"
    );

    // --- Cache hit on resubmission, in a different wire spelling:
    // keys reordered, float respelled, whitespace added, schema tag
    // included. Canonicalization makes them the same job.
    let respelled = concat!(
        r#"{ "schema": "optpower-job/v1", "jobs": [ {"job":"table2"}, "#,
        r#"{"samples": 4e0, "job": "figure2"} ], "job": "batch" }"#
    );
    let hit = post(&addr, "/v1/jobs", "application/json", respelled);
    assert_eq!(hit.status, 200, "{}", hit.body_text());
    assert_eq!(hit.header("x-optpower-cache"), Some("hit"));
    assert_eq!(meta_cache_of(&hit.body_text()).as_deref(), Some("hit"));
    assert_eq!(strip_meta(&hit.body_text()), direct.payload_json());

    // --- CSV content negotiation (also a cache hit).
    let csv = post(&addr, "/v1/jobs", "text/csv", batch_wire);
    assert_eq!(csv.status, 200);
    assert_eq!(csv.header("content-type"), Some("text/csv"));
    assert_eq!(csv.header("x-optpower-cache"), Some("hit"));
    assert_eq!(csv.body_text(), direct.to_csv());

    // --- Metrics reflect all of the above.
    let metrics = Json::parse(&get(&addr, "/metrics").body_text()).expect("metrics parse");
    let count = |name: &str| metrics.get(name).and_then(Json::as_u64).unwrap_or(0);
    assert!(count("served") >= 5, "served = {}", count("served"));
    assert!(count("cache_hits") >= 2, "hits = {}", count("cache_hits"));
    assert!(count("accepted") >= 3);
    assert_eq!(count("queue_depth"), 0);
    assert!(
        metrics
            .get("wall_ms_by_kind")
            .and_then(|k| k.get("batch"))
            .is_some(),
        "per-kind histogram records the batch"
    );

    // --- Graceful shutdown: drain, refuse, join.
    let shutdown = post(&addr, "/v1/shutdown", "application/json", "");
    assert_eq!(shutdown.status, 200);
    assert_eq!(shutdown.body_text(), r#"{"ok":true,"state":"draining"}"#);
    let refused = post(&addr, "/v1/jobs", "application/json", batch_wire);
    assert_eq!(refused.status, 503, "{}", refused.body_text());
    assert!(refused.body_text().contains("\"code\":\"draining\""));
    handle.join();
}

#[test]
fn serve_error_surface_is_the_frozen_mapping() {
    let handle = optpower_serve::start(Config {
        addr: "127.0.0.1:0".to_string(),
        queue_capacity: 4,
        executors: 1,
        workers: Workers::Fixed(1),
        ..Config::default()
    })
    .expect("server starts");
    let addr = handle.addr().to_string();

    // Unparseable spec → 400 invalid_spec (the workload mapping).
    let reply = post(&addr, "/v1/jobs", "application/json", "{ not json");
    assert_eq!(reply.status, 400, "{}", reply.body_text());
    assert!(reply.body_text().contains("\"code\":\"invalid_spec\""));
    assert!(reply
        .body_text()
        .contains("\"schema\":\"optpower-error/v1\""));

    // A spec that parses but cannot execute carries its runtime
    // mapping back over the sync path.
    let reply = post(
        &addr,
        "/v1/jobs",
        "application/json",
        r#"{"job":"activity_measure","arch":"No Such Multiplier"}"#,
    );
    assert_eq!(reply.status, 400, "{}", reply.body_text());
    assert!(reply.body_text().contains("unknown architecture"));

    // Unsupported Accept → 406; unknown path → 404; wrong method →
    // 405 with Allow; unknown key → 404 unknown_job; bad mode → 400.
    let reply = post(&addr, "/v1/jobs", "image/png", r#"{"job":"table2"}"#);
    assert_eq!(reply.status, 406);
    assert!(reply.body_text().contains("\"code\":\"not_acceptable\""));

    assert_eq!(get(&addr, "/nope").status, 404);

    let reply = client::request(&addr, "DELETE", "/v1/jobs", &[], b"", TIMEOUT).expect("DELETE");
    assert_eq!(reply.status, 405);
    assert_eq!(reply.header("allow"), Some("POST"));

    let reply = get(&addr, "/v1/jobs/ffffffffffffffff");
    assert_eq!(reply.status, 404);
    assert!(reply.body_text().contains("\"code\":\"unknown_job\""));

    let reply = post(
        &addr,
        "/v1/jobs?mode=later",
        "application/json",
        r#"{"job":"table2"}"#,
    );
    assert_eq!(reply.status, 400);

    handle.abort();
    handle.join();
}
