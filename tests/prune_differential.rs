//! Differential acceptance of the dead-cone prune pass: on random
//! mixed combinational/sequential DAGs, pruning never changes what an
//! observer at the endpoints can see.
//!
//! * **zero-delay equivalence** — the pruned netlist's output bus
//!   matches the unpruned one cycle for cycle (X-ness included);
//! * **timed equivalence** — under the event-wheel engine with
//!   inertial delays, output traces match *and* every surviving
//!   output's driver cell counts exactly the same number of
//!   transitions (delays are per-cell-kind, so removing a dead sink
//!   cannot re-time a live cone — this pins that invariant);
//! * **idempotence** — pruning a pruned netlist is the identity
//!   ([`PruneStats::is_identity`]), which is the *dead-logic
//!   invariant* the production generators rely on.

use optpower_mult::Architecture;
use optpower_netlist::{CellKind, Library, Netlist, NetlistBuilder};
use optpower_sim::{TimedSim, ZeroDelaySim};
use optpower_sta::LintReport;
use proptest::prelude::*;

/// Builds a random mixed DAG with two-bit `a`/`b` input buses, gate
/// kinds and fan-ins drawn from `picks`, and the last four nets
/// exposed as the `p` output bus — the same generator shape
/// `tests/sta_differential.rs` uses. Because only the last four nets
/// become outputs, most draws leave genuinely dead cones behind,
/// which is exactly what the prune pass must remove without trace.
fn random_builder(picks: &[(u8, u32, u32, u32)]) -> NetlistBuilder {
    let mut b = NetlistBuilder::new("random");
    let mut nets = Vec::new();
    for i in 0..2 {
        nets.push(b.add_input(format!("a{i}")));
    }
    for i in 0..2 {
        nets.push(b.add_input(format!("b{i}")));
    }
    for &(kind_ix, x, y, z) in picks {
        let kinds = [
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Xor3,
            CellKind::Maj3,
            CellKind::Dff,
        ];
        let kind = kinds[kind_ix as usize % kinds.len()];
        let pick = |v: u32| nets[v as usize % nets.len()];
        let ins: Vec<_> = match kind.arity() {
            1 => vec![pick(x)],
            2 => vec![pick(x), pick(y)],
            _ => vec![pick(x), pick(y), pick(z)],
        };
        nets.push(b.add_cell(kind, &ins));
    }
    for (i, net) in nets.iter().rev().take(4).enumerate() {
        b.add_output(format!("p{i}"), *net);
    }
    b
}

/// Drives the zero-delay engine over `stimulus`, returning the output
/// bus value after each cycle (`None` = some bit still X).
fn zero_delay_trace(nl: &Netlist, stimulus: &[u64]) -> Vec<Option<u64>> {
    let mut sim = ZeroDelaySim::new(nl);
    stimulus
        .iter()
        .map(|s| {
            sim.set_input_bits("a", s & 3);
            sim.set_input_bits("b", (s >> 2) & 3);
            sim.step();
            sim.output_bits("p")
        })
        .collect()
}

/// Drives the timed engine over `stimulus`, returning the per-cycle
/// output bus trace plus the transition counter of each primary
/// output's driver cell, in port order.
fn timed_trace(nl: &Netlist, lib: &Library, stimulus: &[u64]) -> (Vec<Option<u64>>, Vec<u64>) {
    let mut sim = TimedSim::new(nl, lib).expect("cmos13 delays are valid");
    let trace = stimulus
        .iter()
        .map(|s| {
            sim.set_input_bits("a", s & 3);
            sim.set_input_bits("b", (s >> 2) & 3);
            sim.step().expect("acyclic netlists settle");
            sim.output_bits("p")
        })
        .collect();
    let transitions = sim.transitions();
    let endpoint_counts = nl
        .primary_outputs()
        .iter()
        .map(|&out| {
            let sampled = nl.cell(out).inputs[0];
            transitions[nl.net(sampled).driver.index()]
        })
        .collect();
    (trace, endpoint_counts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline differential: the same random recipe built raw and
    /// pruned is observationally identical at the endpoints under both
    /// engines, and the prune pass is idempotent.
    #[test]
    fn prune_is_observationally_invisible(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..40),
        stimulus in prop::collection::vec(any::<u64>(), 3..12),
    ) {
        let raw = random_builder(&picks).build().expect("random DAG is valid");
        let pruned = random_builder(&picks)
            .build_pruned()
            .expect("pruning a valid DAG stays valid");
        prop_assert!(pruned.logic_cell_count() <= raw.logic_cell_count());

        // Zero-delay engine: identical output traces.
        prop_assert_eq!(
            zero_delay_trace(&raw, &stimulus),
            zero_delay_trace(&pruned, &stimulus),
            "zero-delay output trace changed under pruning"
        );

        // Timed engine: identical output traces AND identical endpoint
        // transition counts (glitches at the outputs included).
        let lib = Library::cmos13();
        let (raw_trace, raw_endpoints) = timed_trace(&raw, &lib, &stimulus);
        let (pruned_trace, pruned_endpoints) = timed_trace(&pruned, &lib, &stimulus);
        prop_assert_eq!(raw_trace, pruned_trace, "timed output trace changed under pruning");
        prop_assert_eq!(
            raw_endpoints,
            pruned_endpoints,
            "endpoint transition counts changed under pruning"
        );

        // Idempotence: a pruned netlist re-pruned is the identity —
        // the dead-logic invariant the generators ship under.
        let (again, stats) = pruned.prune_dead_cones().expect("pruned netlists re-prune");
        prop_assert!(stats.is_identity(), "prune is not idempotent: {stats:?}");
        prop_assert_eq!(again.logic_cell_count(), pruned.logic_cell_count());
        prop_assert_eq!(again.cells().len(), pruned.cells().len());

        // And pruning the raw build through the netlist-level pass
        // agrees with the builder-level path on what survives.
        let (via_pass, pass_stats) = raw.prune_dead_cones().expect("raw netlists prune");
        prop_assert_eq!(via_pass.cells().len(), pruned.cells().len());
        prop_assert_eq!(
            pass_stats.cells_after,
            pruned.cells().len(),
            "pass stats disagree with the surviving cell count"
        );
    }
}

/// The debug-speed half of the CI tripwire: every production generator
/// at a representative width subset ships with zero L001
/// (unreachable-cell) and zero L002 (floating-net) diagnostics, and
/// re-pruning its netlist is the identity. The full every-width sweep
/// runs in CI through `optpower lint` over `specs/ci_smoke.json`.
#[test]
fn generators_ship_dead_logic_free() {
    for arch in Architecture::ALL {
        for width in [4usize, 8, 16, 32] {
            if !arch.supports_width(width) {
                continue;
            }
            let design = arch.generate(width).unwrap();
            let report = LintReport::lint(&design.netlist);
            let dead: Vec<_> = report
                .diagnostics()
                .iter()
                .filter(|d| matches!(d.rule.id(), "L001" | "L002"))
                .collect();
            assert!(
                dead.is_empty(),
                "{arch} at width {width} ships dead logic: {dead:?}"
            );
            let (_, stats) = design.netlist.prune_dead_cones().unwrap();
            assert!(
                stats.is_identity(),
                "{arch} at width {width} is not prune-idempotent: {stats:?}"
            );
        }
    }
}
