//! Property tests over *randomly generated netlists*: the two
//! simulation engines must agree on settled values, and the timing
//! engine's glitch counting must only ever add transitions.

use optpower_netlist::{CellKind, Library, Netlist, NetlistBuilder};
use optpower_sim::{TimedSim, ZeroDelaySim};
use proptest::prelude::*;

/// Builds a random combinational DAG with `n_inputs` inputs and
/// `n_cells` gates whose inputs are drawn from earlier nets.
fn random_netlist(n_inputs: usize, picks: &[(u8, u32, u32, u32)]) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let mut nets = Vec::new();
    for i in 0..n_inputs {
        nets.push(b.add_input(format!("a{i}")));
    }
    for &(kind_ix, x, y, z) in picks {
        let kinds = [
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Xor3,
            CellKind::Maj3,
        ];
        let kind = kinds[kind_ix as usize % kinds.len()];
        let pick = |v: u32| nets[v as usize % nets.len()];
        let ins: Vec<_> = match kind.arity() {
            1 => vec![pick(x)],
            2 => vec![pick(x), pick(y)],
            _ => vec![pick(x), pick(y), pick(z)],
        };
        nets.push(b.add_cell(kind, &ins));
    }
    // Expose the last few nets as outputs.
    for (i, net) in nets.iter().rev().take(4).enumerate() {
        b.add_output(format!("p{i}"), *net);
    }
    b.build().expect("random DAG is valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Settled outputs of the inertial-delay engine equal the
    /// zero-delay fixpoint on every cycle, for arbitrary DAGs and
    /// stimulus.
    #[test]
    fn engines_agree_on_settled_values(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..60),
        stimulus in prop::collection::vec(any::<u64>(), 3..12),
    ) {
        let nl = random_netlist(4, &picks);
        let lib = Library::cmos13();
        let mut timed = TimedSim::new(&nl, &lib).expect("cmos13 delays are valid");
        let mut zd = ZeroDelaySim::new(&nl);
        for s in &stimulus {
            timed.set_input_bits("a", s & 0xF);
            zd.set_input_bits("a", s & 0xF);
            timed.step().expect("acyclic netlists settle");
            zd.step();
            prop_assert_eq!(timed.output_bits("p"), zd.output_bits("p"));
        }
    }

    /// Glitches only ever add transitions: the timed count dominates
    /// the zero-delay count after identical stimulus.
    #[test]
    fn timed_transitions_dominate_zero_delay(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..60),
        stimulus in prop::collection::vec(any::<u64>(), 4..12),
    ) {
        let nl = random_netlist(4, &picks);
        let lib = Library::cmos13();
        let mut timed = TimedSim::new(&nl, &lib).expect("cmos13 delays are valid");
        let mut zd = ZeroDelaySim::new(&nl);
        // Warm up one vector so both sides leave X-land together.
        timed.set_input_bits("a", 0);
        zd.set_input_bits("a", 0);
        timed.step().expect("acyclic netlists settle");
        zd.step();
        timed.reset_transitions();
        zd.reset_transitions();
        for s in &stimulus {
            timed.set_input_bits("a", s & 0xF);
            zd.set_input_bits("a", s & 0xF);
            timed.step().expect("acyclic netlists settle");
            zd.step();
        }
        prop_assert!(timed.logic_transitions() >= zd.logic_transitions());
    }

    /// STA's logical depth upper-bounds the settling horizon: every
    /// event in the timed engine fires no later than the critical path
    /// (sanity link between the STA and simulation substrates).
    #[test]
    fn sta_depth_is_positive_iff_logic_exists(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 1..40),
    ) {
        let nl = random_netlist(3, &picks);
        let lib = Library::cmos13();
        let sta = optpower_sta::TimingAnalysis::analyze(&nl, &lib);
        prop_assert!(sta.logical_depth() > 0.0);
        prop_assert!(sta.logical_depth() >= sta.shortest_endpoint_path());
        prop_assert!(sta.path_spread() >= 0.0);
    }
}

/// A sequential random structure: the engines also agree through
/// flip-flops (state capture ordering is identical).
#[test]
fn engines_agree_through_registers() {
    let mut b = NetlistBuilder::new("seq_random");
    let x = b.add_input("a0");
    let y = b.add_input("a1");
    let g1 = b.add_cell(CellKind::Xor2, &[x, y]);
    let q1 = b.add_cell(CellKind::Dff, &[g1]);
    let g2 = b.add_cell(CellKind::Nand2, &[q1, x]);
    let q2 = b.add_cell(CellKind::Dff, &[g2]);
    let g3 = b.add_cell(CellKind::Mux2, &[q1, q2, y]);
    b.add_output("p0", g3);
    let nl = b.build().expect("valid");
    let lib = Library::cmos13();
    let mut timed = TimedSim::new(&nl, &lib).expect("cmos13 delays are valid");
    let mut zd = ZeroDelaySim::new(&nl);
    for s in 0..32u64 {
        timed.set_input_bits("a", s & 3);
        zd.set_input_bits("a", s & 3);
        timed.step().expect("acyclic netlists settle");
        zd.step();
        assert_eq!(timed.output_bits("p"), zd.output_bits("p"), "cycle {s}");
    }
}
