//! The parallel exploration engine must be *bit-identical* to the
//! serial sweep on the full Table 1 grid — all thirteen multiplier
//! architectures × the three STM CMOS09 flavours — independent of the
//! worker count. The pool only decides who computes each point; the
//! memoized calibration is a pure function of the technology, so no
//! floating-point result may differ by even one ULP.

use optpower::sweep::frequency_sweep;
use optpower_explore::{explore, ExploreConfig, Grid};
use optpower_units::Hertz;

const F_LO: Hertz = Hertz::new(1e6);
const F_HI: Hertz = Hertz::new(250e6);
const FREQ_POINTS: usize = 25;

#[test]
fn engine_matches_serial_sweep_on_full_table1_grid() {
    let grid = Grid::paper_full(F_LO, F_HI, FREQ_POINTS).unwrap();
    assert_eq!(grid.technologies().len(), 3);
    assert_eq!(grid.architectures().len(), 13);
    assert_eq!(grid.len(), 13 * 3 * FREQ_POINTS);

    // Serial reference: the pre-existing sweep, one (tech, arch) pair
    // at a time, in grid order.
    let mut serial = Vec::with_capacity(grid.len());
    for tech in grid.technologies() {
        for arch in grid.architectures() {
            serial.extend(frequency_sweep(*tech, arch, F_LO, F_HI, FREQ_POINTS).unwrap());
        }
    }

    let engine = explore(&grid, &ExploreConfig::with_workers(1));
    assert_eq!(engine.len(), serial.len());
    for (record, sample) in engine.records().iter().zip(serial.iter()) {
        assert_eq!(record.frequency, sample.frequency);
        assert_eq!(
            record.outcome, sample.outcome,
            "{} / {} @ {:?}",
            record.tech, record.arch, record.frequency
        );
    }
}

#[test]
fn worker_count_never_changes_full_grid_results() {
    let grid = Grid::paper_full(F_LO, F_HI, FREQ_POINTS).unwrap();
    let reference = explore(&grid, &ExploreConfig::with_workers(1));
    for workers in [2, 8] {
        let rs = explore(&grid, &ExploreConfig::with_workers(workers));
        assert_eq!(rs, reference, "workers = {workers}");
    }
}

#[test]
fn full_grid_analytics_are_sane() {
    let grid = Grid::paper_full(F_LO, F_HI, FREQ_POINTS).unwrap();
    let rs = explore(&grid, &ExploreConfig::default());
    let summary = rs.summary();
    assert_eq!(summary.points, grid.len());
    assert_eq!(
        summary.closed + summary.boundary_pinned + summary.failed,
        summary.points
    );
    assert_eq!(summary.failed, 0, "the paper grid never errors");
    // Every architecture closes somewhere (at 1 MHz at the latest).
    assert_eq!(rs.best_per_architecture().len(), 13);
    // The front spans from the slowest to the fastest closable points.
    let front = rs.pareto_front();
    assert!(!front.is_empty());
    for pair in front.windows(2) {
        assert!(pair[0].frequency < pair[1].frequency);
    }
    // Exports cover every point.
    assert_eq!(rs.to_csv().lines().count(), grid.len() + 1);
    assert_eq!(rs.to_json().matches("\"status\":").count(), grid.len());
}
