//! Differential harness locking the event-wheel timed engine and the
//! pooled timed measurement to the frozen scalar reference:
//!
//! * [`TimedSim`] (integer ticks + bucket wheel, allocation-free hot
//!   path) must be *bit-identical* — settled values, per-cell
//!   transition counts and processed-event counts — to
//!   [`ScalarTimedSim`] (the pre-wheel binary-heap engine) on random
//!   mixed combinational/sequential netlists and on the full
//!   13-architecture multiplier suite;
//! * the pooled measurement (`measure_timed_activity_pooled`) must be
//!   bit-identical to the sum of dedicated scalar reference runs over
//!   the same lane seeds, at 1, 2 and 8 workers.

use optpower_explore::{measure_timed_activity_pooled, TimedPoolConfig, Workers};
use optpower_mult::Architecture;
use optpower_netlist::{CellKind, Library, Netlist, NetlistBuilder};
use optpower_sim::{lane_seed, measure_activity, Engine, ScalarTimedSim, TimedSim};
use proptest::prelude::*;

/// Builds a random mixed combinational/sequential DAG with `a` and `b`
/// input buses of two bits each, gate kinds and fan-ins drawn from
/// `picks`, and the last four nets exposed as the `p` output bus.
fn random_netlist(picks: &[(u8, u32, u32, u32)]) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let mut nets = Vec::new();
    for i in 0..2 {
        nets.push(b.add_input(format!("a{i}")));
    }
    for i in 0..2 {
        nets.push(b.add_input(format!("b{i}")));
    }
    for &(kind_ix, x, y, z) in picks {
        let kinds = [
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Xor3,
            CellKind::Maj3,
            CellKind::Dff,
        ];
        let kind = kinds[kind_ix as usize % kinds.len()];
        let pick = |v: u32| nets[v as usize % nets.len()];
        let ins: Vec<_> = match kind.arity() {
            1 => vec![pick(x)],
            2 => vec![pick(x), pick(y)],
            _ => vec![pick(x), pick(y), pick(z)],
        };
        nets.push(b.add_cell(kind, &ins));
    }
    for (i, net) in nets.iter().rev().take(4).enumerate() {
        b.add_output(format!("p{i}"), *net);
    }
    b.build().expect("random DAG is valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Engine-level differential: identical stimulus into the wheel
    /// engine and the scalar reference yields, on every cycle, the
    /// same settled outputs, and at the end the same per-cell
    /// transition counters and per-net values. (Processed-event counts
    /// are an engine diagnostic: batching and no-op elision make the
    /// wheel's count strictly smaller.)
    #[test]
    fn wheel_engine_is_bit_identical_to_scalar_reference(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..40),
        stimulus in prop::collection::vec(any::<u64>(), 3..12),
    ) {
        let nl = random_netlist(&picks);
        let lib = Library::cmos13();
        let mut wheel = TimedSim::new(&nl, &lib).expect("cmos13 delays are valid");
        let mut scalar = ScalarTimedSim::new(&nl, &lib).expect("cmos13 delays are valid");
        for (t, s) in stimulus.iter().enumerate() {
            wheel.set_input_bits("a", s & 3);
            wheel.set_input_bits("b", (s >> 2) & 3);
            scalar.set_input_bits("a", s & 3);
            scalar.set_input_bits("b", (s >> 2) & 3);
            let ew = wheel.step().expect("acyclic netlists settle");
            let es = scalar.step().expect("acyclic netlists settle");
            prop_assert!(ew <= es, "wheel processed {} > scalar {} at cycle {}", ew, es, t);
            prop_assert_eq!(wheel.output_bits("p"), scalar.output_bits("p"), "cycle {}", t);
        }
        // Per-cell transition counts, the quantity the power model
        // ultimately consumes, must agree cell by cell.
        prop_assert_eq!(wheel.transitions(), scalar.transitions());
        prop_assert_eq!(wheel.logic_transitions(), scalar.logic_transitions());
        // And every net's settled value.
        for net in 0..nl.nets().len() {
            let id = optpower_netlist::NetId(net as u32);
            prop_assert_eq!(wheel.value(id), scalar.value(id), "net {}", net);
        }
    }

    /// Measurement-level differential through the public API: the
    /// `Timed` (wheel) and `TimedScalar` (heap) engines produce
    /// identical activity reports for any netlist and seed.
    #[test]
    fn measured_activity_matches_between_wheel_and_scalar(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..30),
        seed in any::<u64>(),
    ) {
        let nl = random_netlist(&picks);
        let lib = Library::cmos13();
        let wheel = measure_activity(&nl, &lib, Engine::Timed, 6, 1, 2, seed).unwrap();
        let scalar = measure_activity(&nl, &lib, Engine::TimedScalar, 6, 1, 2, seed).unwrap();
        prop_assert_eq!(wheel, scalar);
    }

    /// Pool-level differential: the pooled timed measurement equals
    /// the sum of dedicated scalar reference runs over the same lane
    /// seeds — bit-identically, at every worker count.
    #[test]
    fn pooled_measurement_is_worker_invariant_and_matches_scalar_sum(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..25),
        seed in any::<u64>(),
    ) {
        let nl = random_netlist(&picks);
        let lib = Library::cmos13();
        let lanes = 4u32;
        let scalar_sum: u64 = (0..lanes)
            .map(|l| {
                measure_activity(&nl, &lib, Engine::TimedScalar, 5, 1, 2, lane_seed(seed, l))
                    .unwrap()
                    .transitions
            })
            .sum();
        let mut reference = None;
        for workers in [1usize, 2, 8] {
            let config = TimedPoolConfig {
                lanes,
                items_per_lane: 5,
                cycles_per_item: 1,
                warmup: 2,
                seed,
                workers: Workers::Fixed(workers),
            };
            let pooled = measure_timed_activity_pooled(&nl, &lib, &config).unwrap();
            prop_assert_eq!(pooled.transitions, scalar_sum, "workers = {}", workers);
            prop_assert_eq!(pooled.items, u64::from(lanes) * 5);
            let reference = *reference.get_or_insert(pooled);
            prop_assert_eq!(pooled, reference, "workers = {}", workers);
            prop_assert_eq!(
                pooled.activity.to_bits(),
                reference.activity.to_bits(),
                "activity bits at workers = {}", workers
            );
        }
    }
}

/// Acceptance criterion: on every one of the thirteen multiplier
/// architectures, the event-wheel engine's measured transitions are
/// bit-identical to the frozen scalar reference, and the pooled
/// measurement is worker-count invariant and equal to the scalar
/// per-lane sum at 1, 2 and 8 workers.
#[test]
fn full_architecture_suite_wheel_and_pool_match_scalar() {
    let lib = Library::cmos13();
    for arch in Architecture::ALL {
        let design = arch.generate(16).unwrap();
        let wheel = measure_activity(
            &design.netlist,
            &lib,
            Engine::Timed,
            3,
            design.cycles_per_item,
            2,
            9,
        )
        .unwrap();
        let scalar = measure_activity(
            &design.netlist,
            &lib,
            Engine::TimedScalar,
            3,
            design.cycles_per_item,
            2,
            9,
        )
        .unwrap();
        assert_eq!(wheel, scalar, "{arch}: wheel vs scalar");

        let lanes = 4u32;
        let scalar_sum: u64 = (0..lanes)
            .map(|l| {
                measure_activity(
                    &design.netlist,
                    &lib,
                    Engine::TimedScalar,
                    2,
                    design.cycles_per_item,
                    2,
                    lane_seed(9, l),
                )
                .unwrap()
                .transitions
            })
            .sum();
        let mut reference = None;
        for workers in [1usize, 2, 8] {
            let config = TimedPoolConfig {
                lanes,
                items_per_lane: 2,
                cycles_per_item: design.cycles_per_item,
                warmup: 2,
                seed: 9,
                workers: Workers::Fixed(workers),
            };
            let pooled = measure_timed_activity_pooled(&design.netlist, &lib, &config).unwrap();
            assert_eq!(
                pooled.transitions, scalar_sum,
                "{arch} at {workers} workers"
            );
            let reference = *reference.get_or_insert(pooled);
            assert_eq!(pooled, reference, "{arch} at {workers} workers");
        }
    }
}
