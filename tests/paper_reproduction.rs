//! Integration tests asserting the paper's headline claims end to end,
//! across the calibrated reproduction path.

use optpower::calibrate::{build_model, from_breakdown};
use optpower::reference::{PAPER_FREQUENCY, TABLE1};
use optpower::{ArchParams, PowerModel};
use optpower_tech::{Flavor, Linearization, Technology};
use optpower_units::{Farads, SquareMicrons, Volts, Watts};

fn calibrated_model(row_index: usize) -> PowerModel {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    let row = &TABLE1[row_index];
    let cal = from_breakdown(
        &tech,
        Volts::new(row.vdd),
        Volts::new(row.vth),
        Watts::new(row.pdyn_uw * 1e-6),
        Watts::new(row.pstat_uw * 1e-6),
        f64::from(row.cells),
        row.activity,
        PAPER_FREQUENCY,
    )
    .expect("published rows calibrate");
    let arch = ArchParams::builder(row.name)
        .cells(row.cells)
        .activity(row.activity)
        .logical_depth(row.ld_eff)
        .cap_per_cell(Farads::new(1e-15))
        .area(SquareMicrons::new(row.area_um2))
        .build()
        .expect("published rows are valid");
    build_model(tech, arch, PAPER_FREQUENCY, cal).expect("model builds")
}

/// The headline claim: Eq. 13 matches the full numerical optimisation
/// within ±3 % on every one of the thirteen multipliers.
#[test]
fn eq13_error_below_three_percent_on_all_thirteen() {
    for (i, row) in TABLE1.iter().enumerate() {
        let model = calibrated_model(i);
        let num = model.optimize().expect("optimum exists");
        let cf = model.closed_form().expect("closed form defined");
        let err = (num.ptot().value() - cf.ptot.value()) / cf.ptot.value() * 100.0;
        assert!(
            err.abs() < 3.5,
            "{}: Eq.13 error {err:.2}% (paper printed {:.2}%)",
            row.name,
            row.eq13_err_pct
        );
    }
}

/// Our Eq. 13 values match the paper's printed Eq. 13 column.
#[test]
fn eq13_column_matches_printed_values() {
    for (i, row) in TABLE1.iter().enumerate() {
        let cf = calibrated_model(i).closed_form().expect("defined");
        let ours = cf.ptot.value() * 1e6;
        let rel = (ours - row.eq13_uw) / row.eq13_uw;
        assert!(
            rel.abs() < 0.03,
            "{}: Eq13 {ours:.2} vs printed {:.2} ({:.2}%)",
            row.name,
            row.eq13_uw,
            rel * 100.0
        );
    }
}

/// The published linearisation constants are recovered by the fit.
#[test]
fn published_a_b_constants_recovered() {
    let lin = Linearization::fit_paper_range(1.86).expect("fits");
    assert!((lin.a() - 0.671).abs() < 0.005, "A = {}", lin.a());
    assert!((lin.b() - 0.347).abs() < 0.005, "B = {}", lin.b());
}

/// Section 4's architectural conclusions hold in our reproduced optima.
#[test]
fn architectural_conclusions_hold() {
    let ptot = |i: usize| {
        calibrated_model(i)
            .optimize()
            .expect("optimum exists")
            .ptot()
            .value()
    };
    let by_name = |name: &str| {
        TABLE1
            .iter()
            .position(|r| r.name == name)
            .expect("row exists")
    };
    // Sequential designs are heavily penalised.
    assert!(ptot(by_name("Sequential")) > 5.0 * ptot(by_name("RCA")));
    // Pipelining and parallelisation help the RCA.
    assert!(ptot(by_name("RCA hor.pipe2")) < ptot(by_name("RCA")));
    assert!(ptot(by_name("RCA parallel")) < ptot(by_name("RCA")));
    // Wallace par4 loses to par2: the multiplexing overhead cancels the
    // marginal chi reduction.
    assert!(ptot(by_name("Wallace par4")) > ptot(by_name("Wallace parallel")));
    // Horizontal beats diagonal at 4 stages despite the longer LD.
    assert!(ptot(by_name("RCA hor.pipe4")) < ptot(by_name("RCA diagpipe4")));
}

/// Eq. 13 is independent of the DIBL coefficient (the paper's remark
/// at the end of Section 3): solving with different η gives the same
/// closed form.
#[test]
fn closed_form_independent_of_dibl() {
    let arch = ArchParams::builder("RCA")
        .cells(608)
        .activity(0.5056)
        .logical_depth(61.0)
        .cap_per_cell(Farads::new(70.5e-15))
        .build()
        .expect("valid");
    let solve = |eta: f64| {
        let tech = Technology::builder("eta test")
            .alpha(1.86)
            .n(1.33)
            .eta(eta)
            .zeta_chain_length(16.0) // match the published presets
            .build()
            .expect("valid tech");
        PowerModel::from_technology(tech, arch.clone(), PAPER_FREQUENCY)
            .expect("model builds")
            .closed_form()
            .expect("defined")
    };
    let base = solve(0.0);
    let dibl = solve(0.12);
    assert!((base.ptot.value() - dibl.ptot.value()).abs() / base.ptot.value() < 1e-12);
    assert!((base.vdd.value() - dibl.vdd.value()).abs() < 1e-12);
}

/// Figure 1's qualitative content: the optimum moves up in voltage and
/// down in power as the activity drops.
#[test]
fn figure1_trends() {
    let model = calibrated_model(0);
    let mut prev_ptot = f64::INFINITY;
    let mut prev_vdd = 0.0;
    for factor in [1.0, 0.5, 0.1, 0.01] {
        let arch = model
            .arch()
            .clone()
            .with_activity(TABLE1[0].activity * factor)
            .expect("valid activity");
        let m = PowerModel::with_constraint(*model.tech(), arch, model.freq(), model.constraint())
            .expect("model builds");
        let opt = m.optimize().expect("optimum exists");
        assert!(opt.ptot().value() < prev_ptot);
        assert!(opt.vdd().value() > prev_vdd);
        prev_ptot = opt.ptot().value();
        prev_vdd = opt.vdd().value();
    }
}

/// The reproduced flavour tables preserve Section 5's ordering.
#[test]
fn flavor_conclusions_hold() {
    let t1 = optpower_report::table1().expect("reproduces");
    let t3 = optpower_report::table3().expect("reproduces");
    let t4 = optpower_report::table4().expect("reproduces");
    for i in 0..3 {
        let ll = &t1[7 + i];
        assert!(ll.our_ptot_uw < t3[i].our_ptot_uw, "LL < ULL for row {i}");
        assert!(ll.our_ptot_uw < t4[i].our_ptot_uw, "LL < HS for row {i}");
    }
    // HS punishes parallelisation.
    assert!(t4[1].our_ptot_uw > t4[0].our_ptot_uw);
    assert!(t4[2].our_ptot_uw > t4[1].our_ptot_uw);
}
