//! Repo self-lint: the same "is this even worth building" spirit as
//! the netlist lint, applied to the workspace itself. Every workspace
//! crate must carry the safety/doc lint headers, so a new crate can't
//! silently opt out.

use std::path::Path;

/// Crate roots under `dir`, as `(crate name, lib.rs contents)`.
fn lib_sources(dir: &str) -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join(dir);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&root).unwrap_or_else(|e| panic!("{}: {e}", root.display())) {
        let path = entry.unwrap().path().join("src/lib.rs");
        if let Ok(text) = std::fs::read_to_string(&path) {
            out.push((path.display().to_string(), text));
        }
    }
    assert!(!out.is_empty(), "no crates found under {dir}");
    out.sort();
    out
}

/// Every first-party crate forbids `unsafe` and warns on missing docs.
#[test]
fn workspace_crates_carry_the_lint_headers() {
    for (path, text) in lib_sources("crates") {
        assert!(
            text.contains("#![forbid(unsafe_code)]"),
            "{path} is missing #![forbid(unsafe_code)]"
        );
        assert!(
            text.contains("#![warn(missing_docs)]"),
            "{path} is missing #![warn(missing_docs)]"
        );
    }
}

/// The dependency shims forbid `unsafe` too (they deliberately skip
/// `missing_docs`: they mirror external crates' APIs, not ours).
#[test]
fn shims_forbid_unsafe() {
    for (path, text) in lib_sources("shims") {
        assert!(
            text.contains("#![forbid(unsafe_code)]"),
            "{path} is missing #![forbid(unsafe_code)]"
        );
    }
}

/// The dead-logic invariant, enforced on the checked-in goldens: no
/// golden may record an L001 (unreachable-cell) or L002 (floating-net)
/// diagnostic against a Wallace-family netlist. The only goldens
/// allowed to mention those rules at all are the deliberately dirty
/// lint fixtures (`dirty_lint.*`, whose design is named `dirty`).
/// If this fires after a golden refresh, a generator regressed into
/// emitting dead partial-product logic.
#[test]
fn goldens_carry_no_wallace_dead_logic() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden");
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.unwrap().path();
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        if !(text.contains("L001") || text.contains("L002")) {
            continue;
        }
        let lower = text.to_lowercase();
        assert!(
            !lower.contains("wallace"),
            "{} records an L001/L002 diagnostic in a Wallace-family context; \
             the generators must prune dead cones at source",
            path.display()
        );
    }
}
