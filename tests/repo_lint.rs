//! Repo self-lint: the same "is this even worth building" spirit as
//! the netlist lint, applied to the workspace itself. Every workspace
//! crate must carry the safety/doc lint headers, so a new crate can't
//! silently opt out.

use std::path::Path;

/// Crate roots under `dir`, as `(crate name, lib.rs contents)`.
fn lib_sources(dir: &str) -> Vec<(String, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join(dir);
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&root).unwrap_or_else(|e| panic!("{}: {e}", root.display())) {
        let path = entry.unwrap().path().join("src/lib.rs");
        if let Ok(text) = std::fs::read_to_string(&path) {
            out.push((path.display().to_string(), text));
        }
    }
    assert!(!out.is_empty(), "no crates found under {dir}");
    out.sort();
    out
}

/// Every first-party crate forbids `unsafe` and warns on missing docs.
#[test]
fn workspace_crates_carry_the_lint_headers() {
    for (path, text) in lib_sources("crates") {
        assert!(
            text.contains("#![forbid(unsafe_code)]"),
            "{path} is missing #![forbid(unsafe_code)]"
        );
        assert!(
            text.contains("#![warn(missing_docs)]"),
            "{path} is missing #![warn(missing_docs)]"
        );
    }
}

/// The dependency shims forbid `unsafe` too (they deliberately skip
/// `missing_docs`: they mirror external crates' APIs, not ours).
#[test]
fn shims_forbid_unsafe() {
    for (path, text) in lib_sources("shims") {
        assert!(
            text.contains("#![forbid(unsafe_code)]"),
            "{path} is missing #![forbid(unsafe_code)]"
        );
    }
}
