//! Acceptance suite of the declarative workload API:
//!
//! * **lossless round-trips** — proptest over randomized [`JobSpec`]s:
//!   `from_json(to_json(spec)) == spec`, `u64` seeds surviving exactly;
//! * **worker invariance** — the same spec at 1/2/8 workers produces a
//!   bit-identical artifact (payload JSON, CSV and console text);
//! * **legacy faithfulness** — `Artifact::render_text` is byte-identical
//!   to the stdout the retired bespoke report binaries assembled from
//!   the library calls, for the same seed/workers;
//! * **golden wire formats** — the default spec JSON of every kind and
//!   the Table 2 payload envelope are pinned to checked-in files
//!   (`UPDATE_GOLDENS=1 cargo test -q --test workload_api` refreshes).

use optpower_explore::Workers;
use optpower_mult::Architecture;
use optpower_report::PlaneTiling;
use optpower_sim::Engine;
use optpower_workload::{
    AbInitioSpec, ActivitySpec, CacheStatus, GlitchSweepSpec, JobSpec, Json, LintSpec,
    PruneDeltaSpec, RowCacheStats, RunMeta, Runtime, StaSpec, WorkloadError, JOB_KINDS,
};
use proptest::prelude::*;

const ENGINES: [Engine; 6] = [
    Engine::ZeroDelay,
    Engine::Timed,
    Engine::TimedScalar,
    Engine::BitParallel,
    Engine::BitParallel256,
    Engine::BitParallel512,
];

const PLANES: [PlaneTiling; 4] = [
    PlaneTiling::Fixed(64),
    PlaneTiling::Fixed(256),
    PlaneTiling::Fixed(512),
    PlaneTiling::Auto,
];

/// Deterministically builds a spec from random draws — every variant
/// reachable, every field exercised.
fn spec_from(kind: usize, a: u64, b: u64, c: usize, widths: &[usize], names_ix: &[u8]) -> JobSpec {
    let names: Option<Vec<String>> = if names_ix.is_empty() {
        None
    } else {
        Some(
            names_ix
                .iter()
                .map(|&i| {
                    Architecture::ALL[i as usize % Architecture::ALL.len()]
                        .paper_name()
                        .to_string()
                })
                .collect(),
        )
    };
    let freqs = vec![(a % 997) as f64 * 0.25 + 0.5, 31.25, (b % 211) as f64 + 1.0];
    match kind % 19 {
        0 => JobSpec::Table1Sweep { archs: None },
        1 => JobSpec::Table2,
        2 => JobSpec::Table3,
        3 => JobSpec::Table4,
        4 => JobSpec::ScalingStudy {
            frequencies_mhz: freqs,
        },
        5 => JobSpec::Sensitivity,
        6 => JobSpec::Ablation { items: a, seed: b },
        7 => JobSpec::AbInitio(AbInitioSpec {
            archs: names,
            width: 2 + c % 31,
            lanes: 1 + (c as u32 % 16),
            engine: ENGINES[c % ENGINES.len()],
            plane: PLANES[c % PLANES.len()],
            items: a,
            seed: b,
            workers: if c.is_multiple_of(3) {
                None
            } else {
                Some(c % 17)
            },
        }),
        8 => JobSpec::GlitchSweep(GlitchSweepSpec {
            archs: names,
            widths: widths.to_vec(),
            lanes: 1 + (c as u32 % 16),
            engine: ENGINES[c % ENGINES.len()],
            plane: PLANES[(c / 2) % PLANES.len()],
            items: a,
            seed: b,
            freq_points: 2 + c % 20,
            workers: if c.is_multiple_of(2) {
                None
            } else {
                Some(c % 9)
            },
        }),
        9 => JobSpec::ActivityMeasure(ActivitySpec {
            arch: Architecture::ALL[c % 13].paper_name().to_string(),
            width: 2 + c % 31,
            engine: ENGINES[c % 4],
            items: a,
            warmup: b % 32,
            seed: b,
        }),
        10 => JobSpec::Figure1 { samples: c },
        11 => JobSpec::Figure2 { samples: c },
        12 => JobSpec::Figure34 {
            width: 2 + c % 31,
            items: a,
        },
        13 => JobSpec::Pareto {
            freq_points: 2 + c % 30,
        },
        14 => JobSpec::Export,
        15 => JobSpec::Lint(LintSpec {
            archs: names,
            widths: if c.is_multiple_of(4) {
                None
            } else {
                Some(widths.to_vec())
            },
        }),
        16 => JobSpec::Sta(StaSpec {
            archs: names,
            width: 2 + c % 31,
            lanes: 1 + (c as u32 % 16),
            items: a,
            seed: b,
            workers: if c.is_multiple_of(3) {
                None
            } else {
                Some(c % 17)
            },
        }),
        17 => JobSpec::PruneDelta(PruneDeltaSpec {
            archs: names,
            widths: widths.to_vec(),
            items: a,
            seed: b,
            workers: if c.is_multiple_of(3) {
                None
            } else {
                Some(c % 17)
            },
        }),
        _ => JobSpec::Batch(vec![
            JobSpec::Table2,
            JobSpec::Ablation { items: a, seed: b },
            JobSpec::Batch(vec![JobSpec::Figure2 { samples: c }]),
        ]),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline wire-format contract: every JobSpec serializes to
    /// JSON and parses back to an equal value — u64 seeds (beyond
    /// 2^53) included.
    #[test]
    fn jobspec_round_trips_losslessly(
        kind in 0usize..19,
        a in any::<u64>(),
        b in any::<u64>(),
        c in 0usize..1000,
        widths in prop::collection::vec(2usize..33, 1..4),
        names_ix in prop::collection::vec(any::<u8>(), 0..5),
    ) {
        let spec = spec_from(kind, a, b, c, &widths, &names_ix);
        let json = spec.to_json();
        let back = JobSpec::from_json(&json).expect("serialized specs parse");
        prop_assert_eq!(&back, &spec, "wire form: {}", json);
        // Serialization is deterministic: same spec, same bytes.
        prop_assert_eq!(back.to_json(), json);
    }
}

/// Rotates the key order of every JSON object (first pair moves to
/// the end) — a semantically equal but differently spelled wire form.
fn rotate_json_keys(value: Json) -> Json {
    match value {
        Json::Obj(pairs) => {
            let mut rotated: Vec<(String, Json)> = pairs
                .into_iter()
                .map(|(k, v)| (k, rotate_json_keys(v)))
                .collect();
            if rotated.len() > 1 {
                let first = rotated.remove(0);
                rotated.push(first);
            }
            Json::Obj(rotated)
        }
        Json::Arr(items) => Json::Arr(items.into_iter().map(rotate_json_keys).collect()),
        other => other,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The content-address contract behind the serve cache: the
    /// canonical JSON is a serialization fixpoint, and semantically
    /// equal specs — however their wire form spells key order — hash
    /// to the same canonical key.
    #[test]
    fn canonical_key_is_a_wire_spelling_fixpoint(
        kind in 0usize..19,
        a in any::<u64>(),
        b in any::<u64>(),
        c in 0usize..1000,
        widths in prop::collection::vec(2usize..33, 1..4),
        names_ix in prop::collection::vec(any::<u8>(), 0..5),
    ) {
        let spec = spec_from(kind, a, b, c, &widths, &names_ix);
        let canonical = spec.canonical_json();
        prop_assert_eq!(&canonical, &spec.to_json());
        let back = JobSpec::from_json(&canonical).expect("canonical JSON parses");
        prop_assert_eq!(back.canonical_json(), canonical.clone());
        prop_assert_eq!(back.canonical_key(), spec.canonical_key());
        // Same job in a different spelling: every object's key order
        // rotated. The strict parser normalizes it back.
        let rotated = rotate_json_keys(Json::parse(&canonical).expect("canonical is JSON"))
            .to_string();
        let variant = JobSpec::from_json(&rotated).expect("rotated spelling parses");
        prop_assert_eq!(variant.canonical_key(), spec.canonical_key(), "wire form: {}", rotated);
    }
}

/// A cheap-but-covering spec set for execution-level properties.
fn representative_specs() -> Vec<JobSpec> {
    vec![
        JobSpec::Table1Sweep { archs: None },
        JobSpec::Table2,
        JobSpec::Table3,
        JobSpec::ScalingStudy {
            frequencies_mhz: vec![1.0, 250.0],
        },
        JobSpec::Sensitivity,
        JobSpec::AbInitio(AbInitioSpec {
            archs: Some(vec!["RCA".into(), "Wallace".into()]),
            items: 20,
            seed: 5,
            ..AbInitioSpec::default()
        }),
        JobSpec::GlitchSweep(GlitchSweepSpec {
            archs: Some(vec!["Wallace".into()]),
            widths: vec![8, 16],
            items: 15,
            seed: 7,
            freq_points: 3,
            ..GlitchSweepSpec::default()
        }),
        JobSpec::ActivityMeasure(ActivitySpec {
            arch: "RCA".into(),
            width: 8,
            engine: Engine::BitParallel,
            items: 20,
            warmup: 2,
            seed: 3,
        }),
        JobSpec::Figure1 { samples: 8 },
        JobSpec::Figure2 { samples: 8 },
        JobSpec::Pareto { freq_points: 3 },
        JobSpec::Lint(LintSpec {
            archs: Some(vec!["RCA".into(), "Wallace".into()]),
            widths: Some(vec![8, 16]),
        }),
        JobSpec::Sta(StaSpec {
            archs: Some(vec!["RCA".into(), "Sequential".into()]),
            width: 8,
            items: 12,
            seed: 11,
            ..StaSpec::default()
        }),
        JobSpec::PruneDelta(PruneDeltaSpec {
            archs: Some(vec!["Wallace".into()]),
            widths: vec![4],
            items: 8,
            seed: 13,
            ..PruneDeltaSpec::default()
        }),
    ]
}

/// The satellite acceptance test: a spec's artifact is bit-identical
/// at 1, 2 and 8 workers — payload JSON, CSV and console text. The
/// pool only schedules; it never changes bytes.
#[test]
fn artifacts_are_bit_identical_across_worker_counts() {
    for spec in representative_specs() {
        let reference = Runtime::new(Workers::Fixed(1))
            .run(&spec)
            .unwrap_or_else(|e| panic!("{}: {e}", spec.kind()));
        for workers in [2usize, 8] {
            let artifact = Runtime::new(Workers::Fixed(workers))
                .run(&spec)
                .unwrap_or_else(|e| panic!("{}: {e}", spec.kind()));
            assert_eq!(
                artifact.payload_json(),
                reference.payload_json(),
                "{} at {workers} workers",
                spec.kind()
            );
            assert_eq!(
                artifact.to_csv(),
                reference.to_csv(),
                "{} at {workers} workers",
                spec.kind()
            );
            assert_eq!(
                artifact.render_text(),
                reference.render_text(),
                "{} at {workers} workers",
                spec.kind()
            );
        }
    }
}

/// A spec survives a full JSON round-trip *and then* produces the
/// bit-identical artifact — the wire format carries everything the
/// runtime needs.
#[test]
fn round_tripped_specs_produce_identical_artifacts() {
    let runtime = Runtime::new(Workers::Fixed(2));
    for spec in [
        JobSpec::Table3,
        JobSpec::ActivityMeasure(ActivitySpec {
            arch: "Seq4_16".into(),
            width: 8,
            engine: Engine::Timed,
            items: 10,
            warmup: 2,
            seed: 99,
        }),
        JobSpec::Batch(vec![JobSpec::Table2, JobSpec::Figure2 { samples: 4 }]),
    ] {
        let wire = JobSpec::from_json(&spec.to_json()).unwrap();
        let a = runtime.run(&spec).unwrap();
        let b = runtime.run(&wire).unwrap();
        assert_eq!(a.payload_json(), b.payload_json(), "{}", spec.kind());
    }
}

/// `render_text` reproduces, byte for byte, the stdout the retired
/// bespoke binaries assembled — same library calls, same seed, same
/// workers.
#[test]
fn render_text_matches_the_legacy_binary_output() {
    let runtime = Runtime::new(Workers::Auto);

    // table1 (crates/report/src/bin/table1.rs)
    let rows = optpower_report::table1_parallel(Workers::Auto).unwrap();
    let legacy = optpower_report::render_rows(
        "Table 1 - 16-bit multipliers at the optimal working point (ST LL, 31.25 MHz)\n\
         (p) = paper columns; bare = this reproduction",
        &rows,
    );
    assert_eq!(
        runtime
            .run(&JobSpec::Table1Sweep { archs: None })
            .unwrap()
            .render_text(),
        legacy
    );

    // table2 (two printlns)
    let legacy = format!(
        "Table 2 - STM CMOS09 technology flavours\n{}",
        optpower_report::table2()
    );
    assert_eq!(runtime.run(&JobSpec::Table2).unwrap().render_text(), legacy);

    // table3 / table4
    let legacy = optpower_report::render_rows(
        "Table 3 - Wallace family optimal power, ULL flavour (31.25 MHz)",
        &optpower_report::table3().unwrap(),
    );
    assert_eq!(runtime.run(&JobSpec::Table3).unwrap().render_text(), legacy);
    let legacy = optpower_report::render_rows(
        "Table 4 - Wallace family optimal power, HS flavour (31.25 MHz)",
        &optpower_report::table4().unwrap(),
    );
    assert_eq!(runtime.run(&JobSpec::Table4).unwrap().render_text(), legacy);

    // scaling (two sections, four printlns)
    let freqs = [1.0, 31.25];
    let unscaled =
        optpower_report::extended::scaling_study_parallel(&freqs, false, Workers::Auto).unwrap();
    let scaled =
        optpower_report::extended::scaling_study_parallel(&freqs, true, Workers::Auto).unwrap();
    let legacy = format!(
        "== wire-dominated port (capacitance does not scale) ==\n{}\n\
         == full gate-capacitance scaling (x0.7 per node) ==\n{}",
        optpower_report::extended::render_scaling(&unscaled),
        optpower_report::extended::render_scaling(&scaled)
    );
    let artifact = runtime
        .run(&JobSpec::ScalingStudy {
            frequencies_mhz: freqs.to_vec(),
        })
        .unwrap();
    assert_eq!(artifact.render_text(), legacy);

    // sensitivity
    let legacy = optpower_report::extended::render_sensitivities(
        &optpower_report::extended::sensitivity_report_parallel(Workers::Auto).unwrap(),
    );
    assert_eq!(
        runtime.run(&JobSpec::Sensitivity).unwrap().render_text(),
        legacy
    );

    // figure2 (render + CSV lines through `{}` float Display)
    let fig = optpower_report::figure2(7).unwrap();
    let mut legacy = optpower_report::render_figure2(&fig);
    legacy.push_str("\nvdd_v,exact,approx");
    for &(v, e, a) in &fig.points {
        legacy.push_str(&format!("\n{v},{e},{a}"));
    }
    assert_eq!(
        runtime
            .run(&JobSpec::Figure2 { samples: 7 })
            .unwrap()
            .render_text(),
        legacy
    );

    // figure34
    let legacy = optpower_report::render_figure34(&optpower_report::figure34(8, 30).unwrap());
    assert_eq!(
        runtime
            .run(&JobSpec::Figure34 {
                width: 8,
                items: 30
            })
            .unwrap()
            .render_text(),
        legacy
    );

    // ab_initio (no sweep), on a cheap subset with an explicit seed
    let spec = AbInitioSpec {
        archs: Some(vec!["RCA".into(), "Sequential".into()]),
        items: 20,
        seed: 42,
        ..AbInitioSpec::default()
    };
    let rows = optpower_report::characterize_parallel(
        &[Architecture::Rca, Architecture::Sequential],
        optpower_tech::Flavor::LowLeakage,
        20,
        42,
        Workers::Auto,
    )
    .unwrap();
    let legacy = optpower_report::render_ab_initio(&rows);
    assert_eq!(
        runtime.run(&JobSpec::AbInitio(spec)).unwrap().render_text(),
        legacy
    );
}

/// `ab_initio --glitch-sweep`'s stdout: table, glitch-factor figure,
/// then the summary line, assembled exactly as the legacy binary did.
#[test]
fn glitch_sweep_render_matches_the_legacy_composition() {
    let runtime = Runtime::new(Workers::Auto);
    let spec = GlitchSweepSpec {
        archs: Some(vec!["RCA".into(), "Sequential".into()]),
        items: 20,
        seed: 42,
        freq_points: 3,
        ..GlitchSweepSpec::default()
    };
    let artifact = runtime.run(&JobSpec::GlitchSweep(spec)).unwrap();
    let optpower_workload::Payload::Glitch(sweep) = &artifact.payload else {
        panic!("glitch_sweep produces Payload::Glitch");
    };
    let (ga, gf) = (sweep.glitch_aware.summary(), sweep.glitch_free.summary());
    let legacy = format!(
        "{}\n{}\nGlitch-aware sweep: {} points ({} closed); glitch-free: {} closed; \
         design-space glitch cost {:.2} uW over jointly closed points",
        optpower_report::render_ab_initio(&sweep.rows),
        optpower_report::render_glitch_factors(&sweep.rows),
        ga.points,
        ga.closed,
        gf.closed,
        sweep.total_glitch_cost_w() * 1e6,
    );
    assert_eq!(artifact.render_text(), legacy);
    // The width axis is strictly more expressive than the legacy
    // flag: the 16-bit-only sweep is the defaults' special case.
    assert!(sweep.rows.iter().all(|r| r.width == 16));
}

/// Every workload previously reachable via a bespoke report binary is
/// reachable as a JobSpec through the runtime (the export job runs in
/// a temp dir to avoid clobbering real artifacts).
#[test]
fn every_legacy_binary_workload_is_reachable_as_a_jobspec() {
    // Cheap stand-ins: the *kind* coverage is the point here; output
    // equality is locked by the tests above.
    let cheap: Vec<JobSpec> = vec![
        JobSpec::Table1Sweep { archs: None }, // table1
        JobSpec::Table2,                      // table2
        JobSpec::Table3,                      // table3
        JobSpec::Table4,                      // table4
        JobSpec::ScalingStudy {
            frequencies_mhz: vec![31.25],
        }, // scaling
        JobSpec::Sensitivity,                 // sensitivity
        JobSpec::Ablation { items: 20, seed: 3 }, // ablation
        JobSpec::AbInitio(AbInitioSpec {
            archs: Some(vec!["RCA".into()]),
            items: 10,
            ..AbInitioSpec::default()
        }), // ab_initio
        JobSpec::GlitchSweep(GlitchSweepSpec {
            archs: Some(vec!["RCA".into()]),
            items: 10,
            freq_points: 2,
            ..GlitchSweepSpec::default()
        }), // ab_initio --glitch-sweep
        JobSpec::Figure1 { samples: 4 },      // figure1
        JobSpec::Figure2 { samples: 4 },      // figure2
        JobSpec::Figure34 {
            width: 8,
            items: 10,
        }, // figure34
        JobSpec::Export,                      // export
        JobSpec::Pareto { freq_points: 2 },   // pareto (new)
        JobSpec::ActivityMeasure(ActivitySpec {
            items: 5,
            warmup: 2,
            ..ActivitySpec::default()
        }), // activity (new)
    ];
    let dir = std::env::temp_dir().join(format!("optpower-workload-test-{}", std::process::id()));
    let runtime = Runtime::new(Workers::Auto).with_artifact_dir(&dir);
    // And the whole thing as one batch — the CI smoke shape.
    let batch = JobSpec::Batch(cheap);
    let artifact = runtime.run(&batch).unwrap();
    let optpower_workload::Payload::Batch(members) = &artifact.payload else {
        panic!("batch produces Payload::Batch");
    };
    assert_eq!(members.len(), 15);
    // Every member renders, exports JSON and CSV without error.
    for member in members {
        assert!(!member.render_text().is_empty(), "{}", member.kind());
        assert!(
            member
                .payload_json()
                .starts_with("{\"schema\":\"optpower-workload/v1\""),
            "{}",
            member.kind()
        );
        assert!(!member.to_csv().is_empty(), "{}", member.kind());
    }
    // The export member wrote its files.
    assert!(dir.join("rca.vcd").is_file());
    std::fs::remove_dir_all(&dir).ok();
}

/// Misdeclared specs fail with the unified error, not a panic.
#[test]
fn invalid_specs_surface_one_workload_error() {
    let runtime = Runtime::new(Workers::Fixed(1));
    for (spec, needle) in [
        (
            JobSpec::ActivityMeasure(ActivitySpec {
                arch: "No Such Multiplier".into(),
                ..ActivitySpec::default()
            }),
            "unknown architecture",
        ),
        (
            JobSpec::ActivityMeasure(ActivitySpec {
                arch: "Sequential".into(),
                width: 24,
                ..ActivitySpec::default()
            }),
            "width",
        ),
        (
            JobSpec::GlitchSweep(GlitchSweepSpec {
                archs: Some(vec!["Sequential".into()]),
                widths: vec![24],
                ..GlitchSweepSpec::default()
            }),
            "width",
        ),
        (
            JobSpec::GlitchSweep(GlitchSweepSpec {
                widths: vec![],
                ..GlitchSweepSpec::default()
            }),
            "widths",
        ),
        (
            JobSpec::GlitchSweep(GlitchSweepSpec {
                widths: vec![16, 8, 16],
                ..GlitchSweepSpec::default()
            }),
            "more than once",
        ),
        (
            JobSpec::AbInitio(AbInitioSpec {
                archs: Some(vec!["RCA".into(), "RCA".into()]),
                ..AbInitioSpec::default()
            }),
            "more than once",
        ),
    ] {
        let err = runtime.run(&spec).unwrap_err();
        assert!(matches!(err, WorkloadError::Spec(_)), "{spec:?}: {err:?}");
        assert!(err.to_string().contains(needle), "{err}");
    }
}

/// Golden wire formats: the default spec JSON of every kind, pinned.
/// `UPDATE_GOLDENS=1` refreshes the files.
#[test]
fn golden_default_specs() {
    let mut lines = String::new();
    for &(kind, _) in JOB_KINDS {
        lines.push_str(&JobSpec::default_for(kind).unwrap().to_json());
        lines.push('\n');
    }
    golden_compare("tests/golden/default_specs.jsonl", &lines);
}

/// Golden artifact envelope: the Table 2 payload document (pure
/// published constants — deterministic everywhere).
#[test]
fn golden_table2_payload() {
    let artifact = Runtime::new(Workers::Fixed(1))
        .run(&JobSpec::Table2)
        .unwrap();
    golden_compare(
        "tests/golden/table2_payload.json",
        &format!("{}\n", artifact.payload_json()),
    );
}

/// Golden full envelope including the `meta` object — pins the
/// `schema` tag and the `cache` field the serve layer relies on
/// (meta is stamped with fixed values to stay deterministic).
#[test]
fn golden_artifact_envelope_with_meta() {
    let mut artifact = Runtime::new(Workers::Fixed(1))
        .run(&JobSpec::Table2)
        .unwrap();
    artifact.meta = RunMeta {
        seed: None,
        workers: 1,
        engine: None,
        wall_ms: 0.25,
        cache: Some(CacheStatus::Hit),
        row_cache: None,
        dist: None,
    };
    golden_compare(
        "tests/golden/artifact_envelope.json",
        &format!("{}\n", artifact.to_json()),
    );
}

/// The runtime-level cache contract the serve layer builds on:
/// misses populate, hits are stamped and byte-identical, clones
/// share one cache, and cacheless runtimes keep `meta.cache` unset.
#[test]
fn runtime_cache_round_trip() {
    let runtime = Runtime::new(Workers::Fixed(2)).with_cache(8);
    let spec = JobSpec::Figure2 { samples: 4 };
    let first = runtime.run(&spec).unwrap();
    assert_eq!(first.meta.cache, Some(CacheStatus::Miss));
    let second = runtime.run(&spec).unwrap();
    assert_eq!(second.meta.cache, Some(CacheStatus::Hit));
    assert_eq!(first.payload_json(), second.payload_json());
    assert_eq!(
        runtime.clone().run(&spec).unwrap().meta.cache,
        Some(CacheStatus::Hit),
        "clones share the cache"
    );
    assert_eq!(
        Runtime::new(Workers::Fixed(1))
            .run(&spec)
            .unwrap()
            .meta
            .cache,
        None,
        "cacheless runtimes keep the legacy envelope"
    );
}

/// The incremental row-cache contract: per-architecture
/// characterization rows computed by one spec are reused —
/// bit-identically — by *different* specs that overlap on the
/// measurement shape, and the hit/miss counters land in `meta`.
#[test]
fn row_cache_serves_overlapping_characterizations_bit_identically() {
    let cold = Runtime::new(Workers::Fixed(2));
    let cached = Runtime::new(Workers::Fixed(2)).with_cache(8);
    let ab = JobSpec::AbInitio(AbInitioSpec {
        archs: Some(vec!["RCA".into(), "Sequential".into()]),
        items: 12,
        seed: 9,
        ..AbInitioSpec::default()
    });

    // Cold sweep through the cached runtime: both rows computed.
    let first = cached.run(&ab).unwrap();
    assert_eq!(
        first.meta.row_cache,
        Some(RowCacheStats { hits: 0, misses: 2 })
    );
    assert!(first
        .to_json()
        .contains(r#""row_cache":{"hits":0,"misses":2}"#));

    // A *different* spec (worker override changes the canonical key,
    // never the measurement) re-runs the sweep: the artifact cache
    // misses, every row is served, and the payload is bit-identical
    // to the cacheless runtime's.
    let repeat = JobSpec::AbInitio(AbInitioSpec {
        archs: Some(vec!["RCA".into(), "Sequential".into()]),
        items: 12,
        seed: 9,
        workers: Some(1),
        ..AbInitioSpec::default()
    });
    let served = cached.run(&repeat).unwrap();
    assert_eq!(served.meta.cache, Some(CacheStatus::Miss));
    assert_eq!(
        served.meta.row_cache,
        Some(RowCacheStats { hits: 2, misses: 0 })
    );
    assert_eq!(
        served.payload_json(),
        cold.run(&repeat).unwrap().payload_json()
    );

    // An STA job with a measured leg over one shared and one new
    // architecture: the shared row is a hit, the new one a miss, and
    // the rows are bit-identical to a cold STA run.
    let sta = JobSpec::Sta(StaSpec {
        archs: Some(vec!["RCA".into(), "Wallace".into()]),
        items: 12,
        seed: 9,
        ..StaSpec::default()
    });
    let warm_sta = cached.run(&sta).unwrap();
    assert_eq!(
        warm_sta.meta.row_cache,
        Some(RowCacheStats { hits: 1, misses: 1 })
    );
    assert_eq!(
        warm_sta.payload_json(),
        cold.run(&sta).unwrap().payload_json()
    );

    // Cacheless runtimes never stamp counters.
    assert_eq!(cold.run(&ab).unwrap().meta.row_cache, None);
}

fn golden_compare(path: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "golden drift at {} (UPDATE_GOLDENS=1 refreshes after intentional changes)",
        path.display()
    );
}
