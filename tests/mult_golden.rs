//! Golden-model property tests: every one of the thirteen
//! architectures multiplies 16-bit operands exactly like the `u64`
//! reference product, honouring each variant's latency protocol
//! (`cycles_per_item` internal cycles per data item, constant
//! pipeline/parallelisation latency in items).

use optpower_mult::Architecture;
use optpower_sim::{verify_product, VerifyOutcome};
use proptest::prelude::*;

/// Latency bound generous enough for every variant: the deepest
/// pipeline is 4 stages, parallel wrappers add distribution/collection
/// registers, sequential controllers a result register.
const MAX_LATENCY_ITEMS: u32 = 8;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Random operand streams through the zero-delay sim equal the
    /// reference product on every architecture, at some constant
    /// per-architecture latency.
    #[test]
    fn all_architectures_compute_the_reference_product(seed in any::<u64>()) {
        for arch in Architecture::ALL {
            let design = arch.generate(16).unwrap();
            let out = verify_product(
                &design.netlist,
                16,
                design.cycles_per_item,
                MAX_LATENCY_ITEMS,
                seed,
            );
            prop_assert!(out.is_correct(), "{}: {:?}", arch, out);
        }
    }
}

/// The detected latency is a stable architectural property: the same
/// architecture reports the same latency for different stimulus seeds.
#[test]
fn latency_protocol_is_seed_independent() {
    for arch in Architecture::ALL {
        let design = arch.generate(16).unwrap();
        let latency_at = |seed: u64| match verify_product(
            &design.netlist,
            16,
            design.cycles_per_item,
            MAX_LATENCY_ITEMS,
            seed,
        ) {
            VerifyOutcome::Correct { latency_items } => latency_items,
            VerifyOutcome::Mismatch(m) => panic!("{arch}: {m}"),
        };
        assert_eq!(latency_at(3), latency_at(1234), "{arch}");
    }
}

/// `cycles_per_item` matches the architecture family: combinational,
/// pipelined and parallel designs accept one item per cycle; the
/// sequential family needs its internal cycles.
#[test]
fn cycles_per_item_matches_family() {
    for arch in Architecture::ALL {
        let design = arch.generate(16).unwrap();
        let expect = match arch {
            Architecture::Sequential | Architecture::SeqParallel => 16,
            Architecture::Seq4Wallace => 4,
            _ => 1,
        };
        assert_eq!(design.cycles_per_item, expect, "{arch}");
    }
}

/// Feeding a sequential design faster than its protocol (1 cycle per
/// item instead of `cycles_per_item`) must break the product check —
/// the latency protocol is load-bearing, not decorative.
#[test]
fn sequential_protocol_violation_is_detected() {
    let design = Architecture::Sequential.generate(16).unwrap();
    let out = verify_product(&design.netlist, 16, 1, MAX_LATENCY_ITEMS, 7);
    assert!(
        !out.is_correct(),
        "1-cycle items must violate the sequential protocol"
    );
}
