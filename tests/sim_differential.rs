//! Differential harness locking the bit-parallel engine to the scalar
//! reference: `BitParallelSim` must be *bit-identical* — output values
//! and transition counts, per lane — to 64 scalar `ZeroDelaySim` runs
//! with the same per-lane seeds, on random netlists and on the full
//! 13-architecture multiplier suite; and the zero-delay activity must
//! lower-bound the timed activity on the same netlist and seed.

use optpower_mult::Architecture;
use optpower_netlist::{CellKind, Library, Netlist, NetlistBuilder};
use optpower_sim::{
    lane_seed, measure_activity, BitParallelSim, Engine, StimulusGen, ZeroDelaySim, LANES,
};
use proptest::prelude::*;

/// Builds a random mixed combinational/sequential DAG with `a` and `b`
/// input buses of two bits each, gate kinds and fan-ins drawn from
/// `picks`, and the last four nets exposed as the `p` output bus.
fn random_netlist(picks: &[(u8, u32, u32, u32)]) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let mut nets = Vec::new();
    for i in 0..2 {
        nets.push(b.add_input(format!("a{i}")));
    }
    for i in 0..2 {
        nets.push(b.add_input(format!("b{i}")));
    }
    for &(kind_ix, x, y, z) in picks {
        let kinds = [
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Xor3,
            CellKind::Maj3,
            CellKind::Dff,
        ];
        let kind = kinds[kind_ix as usize % kinds.len()];
        let pick = |v: u32| nets[v as usize % nets.len()];
        let ins: Vec<_> = match kind.arity() {
            1 => vec![pick(x)],
            2 => vec![pick(x), pick(y)],
            _ => vec![pick(x), pick(y), pick(z)],
        };
        nets.push(b.add_cell(kind, &ins));
    }
    for (i, net) in nets.iter().rev().take(4).enumerate() {
        b.add_output(format!("p{i}"), *net);
    }
    b.build().expect("random DAG is valid by construction")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-lane differential: driving the bit-parallel engine with 64
    /// seeded stimulus streams yields, in every lane, exactly the
    /// output values and transition counts of a dedicated scalar
    /// zero-delay run on that lane's stream.
    #[test]
    fn bit_parallel_lanes_are_bit_identical_to_scalar_runs(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..40),
        seed in any::<u64>(),
        items in 2u64..8,
    ) {
        let nl = random_netlist(&picks);
        // Bit-parallel run: all 64 lanes at once.
        let mut bp = BitParallelSim::new(&nl);
        let mut stims: Vec<StimulusGen> =
            (0..LANES as u32).map(|l| StimulusGen::new(lane_seed(seed, l), 2, 2)).collect();
        let mut bp_outputs: Vec<Vec<Option<u64>>> = vec![Vec::new(); LANES];
        for _ in 0..items {
            let mut a = [0u64; LANES];
            let mut b = [0u64; LANES];
            for (lane, stim) in stims.iter_mut().enumerate() {
                let (av, bv) = stim.next_item();
                a[lane] = av;
                b[lane] = bv;
            }
            bp.set_input_bits_lanes("a", &a);
            bp.set_input_bits_lanes("b", &b);
            bp.step();
            for (lane, outs) in bp_outputs.iter_mut().enumerate() {
                outs.push(bp.output_bits_lane("p", lane));
            }
        }
        // 64 scalar runs on the same per-lane streams.
        let mut total = 0u64;
        for (lane, lane_outs) in bp_outputs.iter().enumerate() {
            let mut zd = ZeroDelaySim::new(&nl);
            let mut stim = StimulusGen::new(lane_seed(seed, lane as u32), 2, 2);
            for (t, bp_out) in lane_outs.iter().enumerate() {
                let (av, bv) = stim.next_item();
                zd.set_input_bits("a", av);
                zd.set_input_bits("b", bv);
                zd.step();
                prop_assert_eq!(
                    *bp_out,
                    zd.output_bits("p"),
                    "lane {} item {}", lane, t
                );
            }
            prop_assert_eq!(
                bp.lane_logic_transitions()[lane],
                zd.logic_transitions(),
                "lane {} transition count", lane
            );
            total += zd.logic_transitions();
        }
        prop_assert_eq!(bp.logic_transitions(), total);
    }

    /// The same contract through the public measurement API: one
    /// bit-parallel activity measurement equals the sum of 64 scalar
    /// zero-delay measurements over the lane seeds.
    #[test]
    fn measured_activity_is_the_sum_of_lane_measurements(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..30),
        seed in any::<u64>(),
    ) {
        let nl = random_netlist(&picks);
        let lib = Library::cmos13();
        let bp = measure_activity(&nl, &lib, Engine::BitParallel, 6, 1, 2, seed).unwrap();
        let scalar_sum: u64 = (0..LANES as u32)
            .map(|l| {
                measure_activity(&nl, &lib, Engine::ZeroDelay, 6, 1, 2, lane_seed(seed, l))
                    .unwrap()
                    .transitions
            })
            .sum();
        prop_assert_eq!(bp.transitions, scalar_sum);
    }

    /// Glitches only add transitions: on any netlist and seed, the
    /// glitch-free (zero-delay) activity lower-bounds the timed one.
    #[test]
    fn zero_delay_activity_lower_bounds_timed(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..40),
        seed in any::<u64>(),
    ) {
        let nl = random_netlist(&picks);
        let lib = Library::cmos13();
        let zd = measure_activity(&nl, &lib, Engine::ZeroDelay, 8, 1, 2, seed).unwrap();
        let timed = measure_activity(&nl, &lib, Engine::Timed, 8, 1, 2, seed).unwrap();
        prop_assert!(
            timed.transitions >= zd.transitions,
            "timed {} < zero-delay {}", timed.transitions, zd.transitions
        );
    }
}

/// Acceptance criterion: on every one of the thirteen multiplier
/// architectures, the bit-parallel transition count is bit-identical to
/// the sum of 64 seeded scalar zero-delay runs.
#[test]
fn full_architecture_suite_is_bit_identical() {
    let lib = Library::cmos13();
    for arch in Architecture::ALL {
        let design = arch.generate(16).unwrap();
        let bp = measure_activity(
            &design.netlist,
            &lib,
            Engine::BitParallel,
            3,
            design.cycles_per_item,
            2,
            9,
        )
        .unwrap();
        let scalar_sum: u64 = (0..LANES as u32)
            .map(|l| {
                measure_activity(
                    &design.netlist,
                    &lib,
                    Engine::ZeroDelay,
                    3,
                    design.cycles_per_item,
                    2,
                    lane_seed(9, l),
                )
                .unwrap()
                .transitions
            })
            .sum();
        assert_eq!(bp.transitions, scalar_sum, "{arch}");
        assert_eq!(bp.items, 3 * LANES as u64, "{arch}");
    }
}
