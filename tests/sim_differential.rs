//! Differential harness locking the plane engines to the scalar
//! reference: every lane of a `WidePlaneSim` run (64, 256 or 512
//! lanes) must be *bit-identical* — output values and transition
//! counts, per lane — to a scalar `ZeroDelaySim` run with that lane's
//! seed, and each wide plane must equal its independent chunked
//! 64-lane runs, on random netlists and on the full 13-architecture
//! multiplier suite; and the zero-delay activity must lower-bound the
//! timed activity on the same netlist and seed.

use optpower_mult::Architecture;
use optpower_netlist::{CellKind, Library, Netlist, NetlistBuilder};
use optpower_sim::{
    lane_seed, measure_activity, BitParallelSim, Engine, StimulusGen, WidePlaneSim, ZeroDelaySim,
    LANES,
};
use proptest::prelude::*;

/// Builds a random mixed combinational/sequential DAG with `a` and `b`
/// input buses of two bits each, gate kinds and fan-ins drawn from
/// `picks`, and the last four nets exposed as the `p` output bus.
fn random_netlist(picks: &[(u8, u32, u32, u32)]) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let mut nets = Vec::new();
    for i in 0..2 {
        nets.push(b.add_input(format!("a{i}")));
    }
    for i in 0..2 {
        nets.push(b.add_input(format!("b{i}")));
    }
    for &(kind_ix, x, y, z) in picks {
        let kinds = [
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Xor3,
            CellKind::Maj3,
            CellKind::Dff,
        ];
        let kind = kinds[kind_ix as usize % kinds.len()];
        let pick = |v: u32| nets[v as usize % nets.len()];
        let ins: Vec<_> = match kind.arity() {
            1 => vec![pick(x)],
            2 => vec![pick(x), pick(y)],
            _ => vec![pick(x), pick(y), pick(z)],
        };
        nets.push(b.add_cell(kind, &ins));
    }
    for (i, net) in nets.iter().rev().take(4).enumerate() {
        b.add_output(format!("p{i}"), *net);
    }
    b.build().expect("random DAG is valid by construction")
}

/// Runs a `W`-chunk wide plane over `items` lane-seeded stimulus items
/// and checks, lane by lane, that output values and transition counts
/// are bit-identical to (a) a dedicated scalar [`ZeroDelaySim`] run on
/// that lane's stream and (b) `W` independent chunked 64-lane
/// [`BitParallelSim`] runs over the same streams. Plain `assert!`s on
/// purpose: the proptest harness reports the failing inputs either way,
/// and the helper stays monomorphic per width.
fn check_wide_plane<const W: usize>(nl: &Netlist, seed: u64, items: u64) {
    let lanes = LANES * W;
    let mut wide = WidePlaneSim::<W>::new(nl);
    wide.track_lane_transitions();
    let mut narrow: Vec<BitParallelSim> = (0..W)
        .map(|_| {
            let mut sim = BitParallelSim::new(nl);
            sim.track_lane_transitions();
            sim
        })
        .collect();
    let mut stims: Vec<StimulusGen> = (0..lanes as u32)
        .map(|l| StimulusGen::new(lane_seed(seed, l), 2, 2))
        .collect();
    let mut wide_outputs: Vec<Vec<Option<u64>>> = vec![Vec::new(); lanes];
    for _ in 0..items {
        let mut a = vec![0u64; lanes];
        let mut b = vec![0u64; lanes];
        for (lane, stim) in stims.iter_mut().enumerate() {
            let (av, bv) = stim.next_item();
            a[lane] = av;
            b[lane] = bv;
        }
        wide.set_input_bits_lanes("a", &a);
        wide.set_input_bits_lanes("b", &b);
        for (c, sim) in narrow.iter_mut().enumerate() {
            sim.set_input_bits_lanes("a", &a[c * LANES..(c + 1) * LANES]);
            sim.set_input_bits_lanes("b", &b[c * LANES..(c + 1) * LANES]);
        }
        wide.step();
        narrow.iter_mut().for_each(BitParallelSim::step);
        for (lane, outs) in wide_outputs.iter_mut().enumerate() {
            outs.push(wide.output_bits_lane("p", lane));
        }
    }
    // (a) Scalar: every lane replays as a dedicated zero-delay run.
    let mut scalar_total = 0u64;
    for (lane, lane_outs) in wide_outputs.iter().enumerate() {
        let mut zd = ZeroDelaySim::new(nl);
        let mut stim = StimulusGen::new(lane_seed(seed, lane as u32), 2, 2);
        for (t, wide_out) in lane_outs.iter().enumerate() {
            let (av, bv) = stim.next_item();
            zd.set_input_bits("a", av);
            zd.set_input_bits("b", bv);
            zd.step();
            assert_eq!(*wide_out, zd.output_bits("p"), "W={W} lane {lane} item {t}");
        }
        assert_eq!(
            wide.lane_logic_transitions()[lane],
            zd.logic_transitions(),
            "W={W} lane {lane} transition count"
        );
        scalar_total += zd.logic_transitions();
    }
    assert_eq!(wide.logic_transitions(), scalar_total, "W={W} total");
    // (b) Chunked: chunk `c` equals an independent 64-lane run over
    // lanes `64c..64c+64`.
    let mut chunk_total = 0u64;
    for (c, sim) in narrow.iter_mut().enumerate() {
        for lane in 0..LANES {
            assert_eq!(
                wide.output_bits_lane("p", c * LANES + lane),
                sim.output_bits_lane("p", lane),
                "W={W} chunk {c} lane {lane}"
            );
            assert_eq!(
                wide.lane_logic_transitions()[c * LANES + lane],
                sim.lane_logic_transitions()[lane],
                "W={W} chunk {c} lane {lane} transitions"
            );
        }
        chunk_total += sim.logic_transitions();
    }
    assert_eq!(wide.logic_transitions(), chunk_total, "W={W} chunk total");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Per-lane differential: driving the bit-parallel engine with 64
    /// seeded stimulus streams yields, in every lane, exactly the
    /// output values and transition counts of a dedicated scalar
    /// zero-delay run on that lane's stream.
    #[test]
    fn bit_parallel_lanes_are_bit_identical_to_scalar_runs(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..40),
        seed in any::<u64>(),
        items in 2u64..8,
    ) {
        let nl = random_netlist(&picks);
        // Bit-parallel run: all 64 lanes at once.
        let mut bp = BitParallelSim::new(&nl);
        bp.track_lane_transitions();
        let mut stims: Vec<StimulusGen> =
            (0..LANES as u32).map(|l| StimulusGen::new(lane_seed(seed, l), 2, 2)).collect();
        let mut bp_outputs: Vec<Vec<Option<u64>>> = vec![Vec::new(); LANES];
        for _ in 0..items {
            let mut a = [0u64; LANES];
            let mut b = [0u64; LANES];
            for (lane, stim) in stims.iter_mut().enumerate() {
                let (av, bv) = stim.next_item();
                a[lane] = av;
                b[lane] = bv;
            }
            bp.set_input_bits_lanes("a", &a);
            bp.set_input_bits_lanes("b", &b);
            bp.step();
            for (lane, outs) in bp_outputs.iter_mut().enumerate() {
                outs.push(bp.output_bits_lane("p", lane));
            }
        }
        // 64 scalar runs on the same per-lane streams.
        let mut total = 0u64;
        for (lane, lane_outs) in bp_outputs.iter().enumerate() {
            let mut zd = ZeroDelaySim::new(&nl);
            let mut stim = StimulusGen::new(lane_seed(seed, lane as u32), 2, 2);
            for (t, bp_out) in lane_outs.iter().enumerate() {
                let (av, bv) = stim.next_item();
                zd.set_input_bits("a", av);
                zd.set_input_bits("b", bv);
                zd.step();
                prop_assert_eq!(
                    *bp_out,
                    zd.output_bits("p"),
                    "lane {} item {}", lane, t
                );
            }
            prop_assert_eq!(
                bp.lane_logic_transitions()[lane],
                zd.logic_transitions(),
                "lane {} transition count", lane
            );
            total += zd.logic_transitions();
        }
        prop_assert_eq!(bp.logic_transitions(), total);
    }

    /// The wide planes inherit the per-lane contract: at 256 and 512
    /// lanes, every lane's output values and transition counts equal a
    /// dedicated scalar zero-delay run, and every 64-lane chunk equals
    /// an independent chunked `BitParallelSim` run on the same streams.
    #[test]
    fn wide_planes_are_bit_identical_to_scalar_and_chunked_runs(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..30),
        seed in any::<u64>(),
        items in 2u64..6,
    ) {
        let nl = random_netlist(&picks);
        check_wide_plane::<4>(&nl, seed, items);
        check_wide_plane::<8>(&nl, seed, items);
    }

    /// The same contract through the public measurement API: one
    /// bit-parallel activity measurement equals the sum of 64 scalar
    /// zero-delay measurements over the lane seeds.
    #[test]
    fn measured_activity_is_the_sum_of_lane_measurements(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..30),
        seed in any::<u64>(),
    ) {
        let nl = random_netlist(&picks);
        let lib = Library::cmos13();
        let bp = measure_activity(&nl, &lib, Engine::BitParallel, 6, 1, 2, seed).unwrap();
        let scalar_sum: u64 = (0..LANES as u32)
            .map(|l| {
                measure_activity(&nl, &lib, Engine::ZeroDelay, 6, 1, 2, lane_seed(seed, l))
                    .unwrap()
                    .transitions
            })
            .sum();
        prop_assert_eq!(bp.transitions, scalar_sum);
    }

    /// The measurement API at 256/512 lanes: a wide measurement equals
    /// the sum of lane-seeded scalar zero-delay measurements at the
    /// same per-lane item count.
    #[test]
    fn wide_measured_activity_sums_lane_measurements(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..20),
        seed in any::<u64>(),
    ) {
        let nl = random_netlist(&picks);
        let lib = Library::cmos13();
        // One scalar pass over the full 512-lane seed range; the
        // 256-lane total is its prefix (widths nest by construction).
        let per_lane: Vec<u64> = (0..8 * LANES as u32)
            .map(|l| {
                measure_activity(&nl, &lib, Engine::ZeroDelay, 4, 1, 2, lane_seed(seed, l))
                    .unwrap()
                    .transitions
            })
            .collect();
        let wide256 = measure_activity(&nl, &lib, Engine::BitParallel256, 4, 1, 2, seed).unwrap();
        let wide512 = measure_activity(&nl, &lib, Engine::BitParallel512, 4, 1, 2, seed).unwrap();
        prop_assert_eq!(wide256.items, 4 * 256);
        prop_assert_eq!(wide512.items, 4 * 512);
        prop_assert_eq!(wide256.transitions, per_lane[..256].iter().sum::<u64>());
        prop_assert_eq!(wide512.transitions, per_lane.iter().sum::<u64>());
    }

    /// Glitches only add transitions: on any netlist and seed, the
    /// glitch-free (zero-delay) activity lower-bounds the timed one.
    #[test]
    fn zero_delay_activity_lower_bounds_timed(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..40),
        seed in any::<u64>(),
    ) {
        let nl = random_netlist(&picks);
        let lib = Library::cmos13();
        let zd = measure_activity(&nl, &lib, Engine::ZeroDelay, 8, 1, 2, seed).unwrap();
        let timed = measure_activity(&nl, &lib, Engine::Timed, 8, 1, 2, seed).unwrap();
        prop_assert!(
            timed.transitions >= zd.transitions,
            "timed {} < zero-delay {}", timed.transitions, zd.transitions
        );
    }
}

/// Acceptance criterion: on every one of the thirteen multiplier
/// architectures, the bit-parallel transition count is bit-identical to
/// the sum of 64 seeded scalar zero-delay runs.
#[test]
fn full_architecture_suite_is_bit_identical() {
    let lib = Library::cmos13();
    for arch in Architecture::ALL {
        let design = arch.generate(16).unwrap();
        let bp = measure_activity(
            &design.netlist,
            &lib,
            Engine::BitParallel,
            3,
            design.cycles_per_item,
            2,
            9,
        )
        .unwrap();
        let scalar_sum: u64 = (0..LANES as u32)
            .map(|l| {
                measure_activity(
                    &design.netlist,
                    &lib,
                    Engine::ZeroDelay,
                    3,
                    design.cycles_per_item,
                    2,
                    lane_seed(9, l),
                )
                .unwrap()
                .transitions
            })
            .sum();
        assert_eq!(bp.transitions, scalar_sum, "{arch}");
        assert_eq!(bp.items, 3 * LANES as u64, "{arch}");
    }
}

/// The same acceptance criterion for the wide planes: on every
/// architecture, the 256- and 512-lane transition counts equal the
/// sums of the lane-seeded scalar zero-delay runs. One scalar pass
/// over all 512 lane seeds serves both widths (the seed sets nest);
/// 8-bit operands keep the 13 × 512 scalar replays fast.
#[test]
fn full_architecture_suite_wide_planes_are_bit_identical() {
    let lib = Library::cmos13();
    for arch in Architecture::ALL {
        let design = arch.generate(8).unwrap();
        let measure_wide = |engine| {
            measure_activity(
                &design.netlist,
                &lib,
                engine,
                1,
                design.cycles_per_item,
                2,
                9,
            )
            .unwrap()
        };
        let wide256 = measure_wide(Engine::BitParallel256);
        let wide512 = measure_wide(Engine::BitParallel512);
        let per_lane: Vec<u64> = (0..8 * LANES as u32)
            .map(|l| {
                measure_activity(
                    &design.netlist,
                    &lib,
                    Engine::ZeroDelay,
                    1,
                    design.cycles_per_item,
                    2,
                    lane_seed(9, l),
                )
                .unwrap()
                .transitions
            })
            .collect();
        assert_eq!(
            wide256.transitions,
            per_lane[..256].iter().sum::<u64>(),
            "{arch} 256"
        );
        assert_eq!(
            wide512.transitions,
            per_lane.iter().sum::<u64>(),
            "{arch} 512"
        );
        assert_eq!(wide256.items, 256, "{arch}");
        assert_eq!(wide512.items, 512, "{arch}");
    }
}
