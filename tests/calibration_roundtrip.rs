//! Reverse calibration must round-trip the published data: feeding a
//! Table 1 row's optimal point and power breakdown into
//! `calibrate::from_breakdown` yields a model that reproduces exactly
//! that breakdown — and whose optimum lands back on the printed point.

use optpower::calibrate::{build_model, from_breakdown};
use optpower::reference::{PAPER_FREQUENCY, TABLE1};
use optpower::ArchParams;
use optpower_tech::{Flavor, Technology};
use optpower_units::{Farads, Volts, Watts};

fn arch_for(row: &optpower::reference::Table1Row, cap: Farads) -> ArchParams {
    ArchParams::builder(row.name)
        .cells(row.cells)
        .activity(row.activity)
        .logical_depth(row.ld_eff)
        .cap_per_cell(cap)
        .build()
        .expect("published rows are valid arch params")
}

#[test]
fn from_breakdown_round_trips_rca_row() {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    let row = &TABLE1[0]; // RCA: 608 cells, a = 0.5056, LD = 61
    let (vdd, vth) = (Volts::new(row.vdd), Volts::new(row.vth));
    let (pdyn, pstat) = (
        Watts::new(row.pdyn_uw * 1e-6),
        Watts::new(row.pstat_uw * 1e-6),
    );

    let cal = from_breakdown(
        &tech,
        vdd,
        vth,
        pdyn,
        pstat,
        f64::from(row.cells),
        row.activity,
        PAPER_FREQUENCY,
    )
    .expect("published row calibrates");

    // The calibrated constraint passes through the published point.
    assert!(
        (cal.constraint.vth_at(vdd).value() - vth.value()).abs() < 1e-12,
        "constraint misses the published (Vdd*, Vth*)"
    );

    // Rebuilding the model and evaluating Eq. 1 at the published point
    // must return the published breakdown (this is the round-trip).
    let model = build_model(tech, arch_for(row, cal.cap_per_cell), PAPER_FREQUENCY, cal)
        .expect("calibrated model builds");
    let bd = model.power_at(vdd, vth);
    let dyn_err = (bd.pdyn().value() - pdyn.value()).abs() / pdyn.value();
    let stat_err = (bd.pstat().value() - pstat.value()).abs() / pstat.value();
    assert!(dyn_err < 1e-9, "pdyn relative error {dyn_err:e}");
    assert!(stat_err < 1e-9, "pstat relative error {stat_err:e}");

    // And the model's own optimum lands back on (a refinement of) the
    // printed optimal point: sub-1% in Ptot, a few mV in voltages.
    let opt = model.optimize().expect("calibrated model solves");
    let ptot_pub = row.ptot_uw * 1e-6;
    let ptot_err = (opt.ptot().value() - ptot_pub).abs() / ptot_pub;
    assert!(ptot_err < 0.01, "ptot relative error {ptot_err}");
    assert!((opt.vdd().value() - row.vdd).abs() < 0.02, "vdd drifted");
    assert!((opt.vth().value() - row.vth).abs() < 0.02, "vth drifted");
}

#[test]
fn from_breakdown_round_trips_every_table1_row() {
    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    for row in &TABLE1 {
        let (vdd, vth) = (Volts::new(row.vdd), Volts::new(row.vth));
        let (pdyn, pstat) = (
            Watts::new(row.pdyn_uw * 1e-6),
            Watts::new(row.pstat_uw * 1e-6),
        );
        let cal = from_breakdown(
            &tech,
            vdd,
            vth,
            pdyn,
            pstat,
            f64::from(row.cells),
            row.activity,
            PAPER_FREQUENCY,
        )
        .unwrap_or_else(|e| panic!("{}: calibration failed: {e}", row.name));
        let model = build_model(tech, arch_for(row, cal.cap_per_cell), PAPER_FREQUENCY, cal)
            .unwrap_or_else(|e| panic!("{}: model failed: {e}", row.name));
        let bd = model.power_at(vdd, vth);
        let total_pub = (row.pdyn_uw + row.pstat_uw) * 1e-6;
        let err = (bd.total().value() - total_pub).abs() / total_pub;
        assert!(err < 1e-9, "{}: total power error {err:e}", row.name);
    }
}
