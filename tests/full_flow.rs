//! End-to-end ab-initio flow tests: generate a netlist, prove it
//! multiplies, measure its parameters, and optimise its power — the
//! complete substrate chain with no reference to the paper's numbers.

use optpower::{ArchParams, PowerModel};
use optpower_mult::Architecture;
use optpower_netlist::{Library, NetlistStats};
use optpower_sim::{measure_activity, verify_product, Engine, VerifyOutcome};
use optpower_sta::TimingAnalysis;
use optpower_tech::{Flavor, Technology};
use optpower_units::{Farads, Hertz};

fn run_flow(arch: Architecture) -> (f64, f64, f64) {
    let lib = Library::cmos13();
    let design = arch.generate(16).expect("generator is valid");

    // 1. Functional correctness.
    let outcome = verify_product(&design.netlist, 40, design.cycles_per_item, 8, 1234);
    assert!(outcome.is_correct(), "{arch}: {outcome:?}");

    // 2. Measurements.
    let stats = NetlistStats::measure(&design.netlist, &lib);
    let sta = TimingAnalysis::analyze(&design.netlist, &lib);
    let activity = measure_activity(
        &design.netlist,
        &lib,
        Engine::Timed,
        50,
        design.cycles_per_item,
        4,
        7,
    )
    .expect("valid library and acyclic netlist");
    assert!(activity.activity > 0.0, "{arch}: no switching measured");

    // 3. Optimisation.
    let params = ArchParams::builder(arch.paper_name())
        .cells(stats.logic_cells as u32)
        .activity(activity.activity)
        .logical_depth(design.effective_logical_depth(sta.logical_depth()))
        .cap_per_cell(Farads::new(stats.avg_switched_cap_f))
        .build()
        .expect("measured parameters are valid");
    let model = PowerModel::from_technology(
        Technology::stm_cmos09(Flavor::LowLeakage),
        params,
        Hertz::new(31.25e6),
    )
    .expect("model builds");
    let opt = model.optimize().expect("optimum exists");
    (
        opt.ptot().value() * 1e6,
        opt.vdd().value(),
        activity.activity,
    )
}

#[test]
fn full_flow_rca() {
    let (ptot, vdd, _) = run_flow(Architecture::Rca);
    assert!(ptot > 10.0 && ptot < 2000.0, "ptot {ptot}");
    assert!(vdd > 0.2 && vdd < 1.0, "vdd {vdd}");
}

#[test]
fn full_flow_wallace() {
    let (ptot_w, _, a_w) = run_flow(Architecture::Wallace);
    let (ptot_r, _, a_r) = run_flow(Architecture::Rca);
    // The Wallace tree wins on both activity and optimal power.
    assert!(a_w < a_r, "wallace a {a_w} vs rca {a_r}");
    assert!(ptot_w < ptot_r, "wallace {ptot_w} vs rca {ptot_r}");
}

#[test]
fn full_flow_pipelines() {
    let (ptot_h, _, a_h) = run_flow(Architecture::RcaHorPipe2);
    let (ptot_d, _, a_d) = run_flow(Architecture::RcaDiagPipe2);
    let (ptot_base, _, _) = run_flow(Architecture::Rca);
    // Pipelining helps; diagonal is glitchier than horizontal.
    assert!(ptot_h < ptot_base);
    assert!(ptot_d < ptot_base);
    assert!(a_d > a_h, "diag a {a_d} vs hor a {a_h}");
}

#[test]
fn full_flow_parallel() {
    let (ptot_p2, _, a_p2) = run_flow(Architecture::RcaParallel2);
    let (ptot_base, _, a_base) = run_flow(Architecture::Rca);
    assert!(a_p2 < a_base, "par2 a {a_p2} vs base {a_base}");
    assert!(ptot_p2 < ptot_base, "par2 {ptot_p2} vs base {ptot_base}");
}

#[test]
fn full_flow_sequential() {
    let (ptot_seq, vdd_seq, a_seq) = run_flow(Architecture::Sequential);
    let (ptot_base, vdd_base, _) = run_flow(Architecture::Rca);
    // The paper's strongest conclusion: sequential loses massively and
    // needs a much higher supply to close timing.
    assert!(a_seq > 1.0, "sequential activity {a_seq} must exceed 1");
    assert!(ptot_seq > 3.0 * ptot_base);
    assert!(vdd_seq > vdd_base);
}

#[test]
fn all_thirteen_multiply_correctly() {
    for arch in Architecture::ALL {
        let design = arch.generate(16).expect("generator valid");
        let outcome = verify_product(&design.netlist, 30, design.cycles_per_item, 8, 99);
        assert!(
            matches!(outcome, VerifyOutcome::Correct { .. }),
            "{arch}: {outcome:?}"
        );
    }
}

#[test]
fn smaller_widths_also_multiply() {
    for arch in [
        Architecture::Rca,
        Architecture::Wallace,
        Architecture::RcaHorPipe2,
        Architecture::RcaDiagPipe2,
        Architecture::Sequential,
        Architecture::Seq4Wallace,
    ] {
        let design = arch.generate(8).expect("8-bit generator valid");
        let outcome = verify_product(&design.netlist, 30, design.cycles_per_item, 8, 5);
        assert!(outcome.is_correct(), "{arch} @8: {outcome:?}");
    }
}
