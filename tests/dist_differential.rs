//! Differential acceptance of the coordinator/worker cluster: for
//! every shardable job kind, the merged distributed artifact must be
//! **byte-identical** — `payload_json()` and `to_csv()` — to the
//! single-host [`Runtime::run`] result at shard counts 1, 2, 4 and 8,
//! with distribution visible only in `meta.dist`. Plus pure
//! properties of the sharding algebra itself: the arch axis
//! partitions exactly for any shard count and subset, and rendezvous
//! assignment is total and deterministic.

use optpower_dist::{assign_host, spawn, Cluster, WorkerHandle};
use optpower_explore::Workers;
use optpower_mult::Architecture;
use optpower_workload::{AbInitioSpec, ActivitySpec, GlitchSweepSpec, JobSpec, Runtime};
use proptest::prelude::*;

/// In-process workers on ephemeral loopback ports, each with a small
/// artifact cache (the production shape: retried shards hit it).
fn spawn_workers(n: usize) -> Vec<WorkerHandle> {
    (0..n)
        .map(|_| {
            spawn(
                "127.0.0.1:0",
                Runtime::new(Workers::Fixed(1)).with_cache(16),
            )
            .expect("bind loopback worker")
        })
        .collect()
}

fn cluster_of(workers: &[WorkerHandle]) -> Cluster {
    Cluster::new(workers.iter().map(|w| w.addr().to_string()).collect())
        .with_workers(Workers::Fixed(1))
}

/// Runs `spec` locally and through the cluster at shard counts 1, 2,
/// 4 and 8, asserting byte-identity of the deterministic renderings
/// and that `meta.dist` records the topology truthfully.
fn assert_dist_matches_local(workers: &[WorkerHandle], spec: &JobSpec) {
    let local = Runtime::new(Workers::Fixed(1))
        .run(spec)
        .expect("local run");
    let (payload, csv, text) = (local.payload_json(), local.to_csv(), local.render_text());
    for shards in [1usize, 2, 4, 8] {
        let run = cluster_of(workers)
            .with_shards(shards)
            .run(spec)
            .unwrap_or_else(|e| panic!("{} at {shards} shards: {e}", spec.kind()));
        assert_eq!(run.payload_json, payload, "payload at {shards} shards");
        assert_eq!(run.csv, csv, "csv at {shards} shards");
        assert_eq!(run.text, text, "text at {shards} shards");
        assert_eq!(run.stats.retries, 0, "no deaths injected");
        if let Some(artifact) = &run.artifact {
            let dist = artifact.meta.dist.expect("dist meta stamped");
            assert_eq!(dist.hosts, workers.len());
            assert_eq!(dist.shards, run.stats.shards);
            assert_eq!(dist.retries, 0);
            assert_eq!(artifact.payload_json(), payload);
            assert_eq!(artifact.to_csv(), csv);
        }
    }
}

/// The full 13-architecture characterization suite, distributed: the
/// paper's whole Table 1 arch axis at reduced stimulus volume.
#[test]
fn thirteen_arch_ab_initio_suite_is_bit_identical_across_shard_counts() {
    let workers = spawn_workers(2);
    let spec = JobSpec::AbInitio(AbInitioSpec {
        items: 16,
        ..AbInitioSpec::default()
    });
    assert_dist_matches_local(&workers, &spec);
}

/// A glitch sweep shards as single-width characterization cells and
/// is rebuilt from merged rows — still byte-identical.
#[test]
fn glitch_sweep_is_bit_identical_across_shard_counts() {
    let workers = spawn_workers(2);
    let spec = JobSpec::GlitchSweep(GlitchSweepSpec {
        archs: Some(vec!["RCA".to_string(), "Wallace".to_string()]),
        widths: vec![4, 8],
        items: 20,
        freq_points: 3,
        ..GlitchSweepSpec::default()
    });
    assert_dist_matches_local(&workers, &spec);
}

/// A batch with repeated members: the members dedup into one shard
/// each, execute once, and clone back into every position — so the
/// batch envelope (member order included) still matches byte for
/// byte, and the repeated member composes with the worker-side row
/// cache rather than re-simulating.
#[test]
fn batch_with_repeated_members_is_bit_identical_across_shard_counts() {
    let workers = spawn_workers(2);
    let activity = JobSpec::ActivityMeasure(ActivitySpec {
        items: 32,
        ..ActivitySpec::default()
    });
    let spec = JobSpec::Batch(vec![
        JobSpec::Table2,
        activity.clone(),
        JobSpec::Table2,
        JobSpec::Table3,
        activity,
    ]);
    assert_dist_matches_local(&workers, &spec);
}

/// A subset Table 1 sweep distributes row-by-row and reassembles in
/// published-table order.
#[test]
fn table1_subset_sweep_is_bit_identical_across_shard_counts() {
    let workers = spawn_workers(2);
    let spec = JobSpec::Table1Sweep {
        archs: Some(vec![
            "Wallace".to_string(),
            "RCA".to_string(),
            "Sequential".to_string(),
        ]),
    };
    assert_dist_matches_local(&workers, &spec);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharding the arch axis is an exact partition for every shard
    /// count and every rotation-derived subset: concatenating the
    /// shard arch lists reproduces the subset in resolution order,
    /// and every other spec field survives unchanged.
    #[test]
    fn ab_initio_shard_counts_partition_any_arch_subset(
        n in 1usize..20,
        k in 1usize..14,
        rot in 0usize..13,
        seed in any::<u64>(),
    ) {
        let all: Vec<String> = Architecture::ALL
            .iter()
            .map(|a| a.paper_name().to_string())
            .collect();
        let subset: Vec<String> = (0..k.min(all.len()))
            .map(|i| all[(i + rot) % all.len()].clone())
            .collect();
        let spec = JobSpec::AbInitio(AbInitioSpec {
            archs: Some(subset.clone()),
            seed,
            ..AbInitioSpec::default()
        });
        let shards = spec.shard(n).expect("valid subsets shard cleanly");
        prop_assert!(shards.len() <= n);
        prop_assert!(shards.len() <= subset.len());
        let mut joined = Vec::new();
        for shard in &shards {
            match shard {
                JobSpec::AbInitio(s) => {
                    prop_assert_eq!(s.seed, seed);
                    match (&s.archs, shards.len()) {
                        (Some(archs), _) => joined.extend(archs.clone()),
                        // n == 1 passes the spec through untouched.
                        (None, 1) => joined = subset.clone(),
                        (None, _) => prop_assert!(false, "multi-shard spec lost its archs"),
                    }
                }
                other => prop_assert!(false, "unexpected shard {:?}", other),
            }
        }
        prop_assert_eq!(joined, subset);
    }

    /// Rendezvous assignment is total (always one of the hosts) and
    /// deterministic (same inputs, same host) for any host-set size.
    #[test]
    fn rendezvous_assignment_is_total_and_deterministic(
        hosts_n in 1usize..6,
        key in any::<u64>(),
    ) {
        let hosts: Vec<String> = (0..hosts_n).map(|i| format!("10.0.0.{i}:7000")).collect();
        let shard_key = format!("{key:016x}");
        let first = assign_host(&hosts, &shard_key).to_string();
        prop_assert!(hosts.contains(&first));
        prop_assert_eq!(assign_host(&hosts, &shard_key), first.as_str());
    }
}
