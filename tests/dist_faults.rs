//! Fault injection for the coordinator/worker cluster: a worker that
//! dies mid-shard (socket dropped right after accepting the Assign)
//! must never change the merged artifact — the retried run's
//! `payload_json` and CSV must be byte-identical to both a fault-free
//! cluster run and the single-host run, with the death visible only
//! in `meta.dist.retries` and the per-host shard counts. Plus the
//! retry/cache composition: resubmitting after the fault through a
//! shard cache answers every shard without touching a worker.

use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread;

use optpower_dist::{assign_host, spawn, Cluster};
use optpower_explore::Workers;
use optpower_serve::ShardCache;
use optpower_workload::{AbInitioSpec, JobSpec, Runtime, ShardFrame};

/// A worker that speaks just enough protocol to be assigned work and
/// then dies: accept, Hello, read the first Assign, drop the socket.
/// From the coordinator's side this is a worker crashing mid-shard.
fn spawn_faulty_worker() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind faulty worker");
    let addr = listener.local_addr().expect("local addr");
    thread::spawn(move || {
        if let Ok((mut stream, _)) = listener.accept() {
            let _ = ShardFrame::Hello {
                host: addr.to_string(),
            }
            .write_to(&mut stream);
            let _ = ShardFrame::read_from(&mut stream);
            // Dropping the stream here is the mid-shard death: the
            // coordinator sees EOF where a Heartbeat/Result was due.
        }
    });
    addr
}

fn small_suite() -> JobSpec {
    JobSpec::AbInitio(AbInitioSpec {
        archs: Some(vec![
            "RCA".to_string(),
            "RCA parallel".to_string(),
            "Wallace".to_string(),
            "Wallace parallel".to_string(),
        ]),
        items: 16,
        ..AbInitioSpec::default()
    })
}

#[test]
fn worker_death_mid_shard_retries_without_changing_a_byte() {
    let spec = small_suite();
    let shard_keys: Vec<String> = spec
        .shard(4)
        .expect("shardable")
        .iter()
        .map(|s| s.canonical_key())
        .collect();

    let healthy = spawn(
        "127.0.0.1:0",
        Runtime::new(Workers::Fixed(1)).with_cache(16),
    )
    .expect("healthy worker");

    // Rendezvous placement is deterministic in (shard key, host
    // address), so bind fresh faulty listeners until one actually
    // wins a shard — then the death is guaranteed to happen.
    let (faulty, hosts) = loop {
        let candidate = spawn_faulty_worker();
        let hosts = vec![healthy.addr().to_string(), candidate.to_string()];
        let victim = candidate.to_string();
        if shard_keys.iter().any(|k| assign_host(&hosts, k) == victim) {
            break (victim, hosts);
        }
    };
    let planned_deaths = shard_keys
        .iter()
        .filter(|k| assign_host(&hosts, k) == faulty)
        .count() as u64;

    // Baselines: single-host, and a fault-free two-worker cluster.
    let local = Runtime::new(Workers::Fixed(1))
        .run(&spec)
        .expect("local run");
    let spare = spawn(
        "127.0.0.1:0",
        Runtime::new(Workers::Fixed(1)).with_cache(16),
    )
    .expect("spare worker");
    let fault_free = Cluster::new(vec![healthy.addr().to_string(), spare.addr().to_string()])
        .with_shards(4)
        .with_workers(Workers::Fixed(1))
        .run(&spec)
        .expect("fault-free cluster run");

    let faulted = Cluster::new(hosts)
        .with_shards(4)
        .with_workers(Workers::Fixed(1))
        .with_timeout_ms(5_000)
        .run(&spec)
        .expect("faulted cluster run survives the death");

    // Byte identity against both baselines.
    assert_eq!(faulted.payload_json, local.payload_json());
    assert_eq!(faulted.csv, local.to_csv());
    assert_eq!(faulted.text, local.render_text());
    assert_eq!(faulted.payload_json, fault_free.payload_json);
    assert_eq!(faulted.csv, fault_free.csv);

    // The death is recorded — and only in the metadata.
    assert_eq!(faulted.stats.retries, planned_deaths);
    assert_eq!(faulted.stats.per_host.get(&faulty), Some(&0));
    let artifact = faulted.artifact.expect("typed merge");
    let dist = artifact.meta.dist.expect("dist meta stamped");
    assert_eq!(dist.retries, planned_deaths);
    assert_eq!((dist.hosts, dist.shards), (2, 4));
    let clean = fault_free.artifact.expect("typed merge");
    assert_eq!(clean.meta.dist.expect("dist meta").retries, 0);
}

/// The retry/cache composition: a coordinator that survived a worker
/// death fills its shard cache, so resubmitting the same job answers
/// every shard from the cache — zero worker traffic, same bytes.
#[test]
fn resubmission_after_a_fault_is_a_pure_shard_cache_hit() {
    let spec = small_suite();
    let shard_keys: Vec<String> = spec
        .shard(4)
        .expect("shardable")
        .iter()
        .map(|s| s.canonical_key())
        .collect();
    let healthy = spawn(
        "127.0.0.1:0",
        Runtime::new(Workers::Fixed(1)).with_cache(16),
    )
    .expect("healthy worker");
    let hosts = loop {
        let candidate = spawn_faulty_worker();
        let hosts = vec![healthy.addr().to_string(), candidate.to_string()];
        let victim = candidate.to_string();
        if shard_keys.iter().any(|k| assign_host(&hosts, k) == victim) {
            break hosts;
        }
    };

    let cache = Arc::new(ShardCache::new(64));
    let first = Cluster::new(hosts)
        .with_shards(4)
        .with_workers(Workers::Fixed(1))
        .with_timeout_ms(5_000)
        .with_cache(Arc::clone(&cache) as Arc<dyn optpower_dist::ShardResultCache>)
        .run(&spec)
        .expect("first run survives the death");
    assert!(first.stats.retries >= 1);
    assert_eq!(first.stats.shard_cache_hits, 0);

    // Resubmit against a cluster whose only "worker" address is a
    // dead port: every shard must come from the cache, or this run
    // could not succeed at all.
    let resubmit = Cluster::new(vec!["127.0.0.1:1".to_string()])
        .with_shards(4)
        .with_workers(Workers::Fixed(1))
        .with_cache(Arc::clone(&cache) as Arc<dyn optpower_dist::ShardResultCache>)
        .run(&spec)
        .expect("cache-only run");
    assert_eq!(resubmit.stats.shard_cache_hits, 4);
    assert_eq!(resubmit.stats.shard_cache_misses, 0);
    assert_eq!(resubmit.payload_json, first.payload_json);
    assert_eq!(resubmit.csv, first.csv);
    assert_eq!(
        resubmit.artifact.expect("typed merge").meta.dist,
        Some(optpower_workload::DistMeta {
            hosts: 1,
            shards: 4,
            retries: 0,
        })
    );
}
