//! Property and failure-injection tests over the multiplier
//! generators: every width multiplies correctly, and the verification
//! harness actually catches sabotaged netlists.

use optpower_mult::{booth_radix4, rca, rca_pipelined, wallace, PipelineStyle};
use optpower_netlist::{Cell, CellKind, Netlist, NetlistBuilder};
use optpower_sim::verify_product;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The RCA array multiplies at every width 2..=20.
    #[test]
    fn rca_all_widths(width in 2usize..=20) {
        let nl = rca(width).unwrap();
        let out = verify_product(&nl, 30, 1, 2, width as u64);
        prop_assert!(out.is_correct(), "w={width}: {out:?}");
    }

    /// The Wallace tree multiplies at every width 2..=20.
    #[test]
    fn wallace_all_widths(width in 2usize..=20) {
        let nl = wallace(width).unwrap();
        let out = verify_product(&nl, 30, 1, 2, width as u64);
        prop_assert!(out.is_correct(), "w={width}: {out:?}");
    }

    /// Booth multiplies at every even width 4..=20.
    #[test]
    fn booth_all_even_widths(half in 2usize..=10) {
        let width = 2 * half;
        let nl = booth_radix4(width).unwrap();
        let out = verify_product(&nl, 30, 1, 2, width as u64);
        prop_assert!(out.is_correct(), "w={width}: {out:?}");
    }

    /// Pipelined arrays multiply for any width and stage combination.
    #[test]
    fn pipelined_all_widths(width in 4usize..=16, stages in 2u32..=5,
                            diagonal in any::<bool>()) {
        let style = if diagonal { PipelineStyle::Diagonal } else { PipelineStyle::Horizontal };
        let nl = rca_pipelined(width, stages, style).unwrap();
        let out = verify_product(&nl, 30, 1, 8, width as u64);
        prop_assert!(out.is_correct(), "w={width} s={stages} {style:?}: {out:?}");
    }
}

/// Rebuilds a netlist with one cell's kind swapped — a stuck/mutated
/// gate fault.
fn mutate_kind(netlist: &Netlist, victim: usize, into: CellKind) -> Netlist {
    let mut b = NetlistBuilder::new("mutated");
    for (i, cell) in netlist.cells().iter().enumerate() {
        let Cell {
            kind, name, inputs, ..
        } = cell;
        let kind = if i == victim && kind.arity() == into.arity() {
            into
        } else {
            *kind
        };
        match kind {
            CellKind::Input => {
                b.add_input(name.clone());
            }
            CellKind::Output => {
                b.add_output(name.clone(), inputs[0]);
            }
            _ => {
                b.add_named_cell(kind, name.clone(), inputs);
            }
        }
    }
    b.build().expect("mutation preserves structure")
}

#[test]
fn fault_injection_is_detected() {
    // Swap each of several XOR3 sum cells for a MAJ3: the product must
    // break and the checker must say so.
    let golden = rca(8).unwrap();
    let xor3_sites: Vec<usize> = golden
        .cells()
        .iter()
        .enumerate()
        .filter(|(_, c)| c.kind == CellKind::Xor3)
        .map(|(i, _)| i)
        .take(5)
        .collect();
    assert!(!xor3_sites.is_empty(), "the RCA contains full adders");
    for victim in xor3_sites {
        let mutated = mutate_kind(&golden, victim, CellKind::Maj3);
        let out = verify_product(&mutated, 40, 1, 2, 7);
        assert!(
            !out.is_correct(),
            "mutating cell {victim} must break the multiplier"
        );
    }
}

#[test]
fn benign_mutation_is_accepted() {
    // Control case: rebuilding without mutation still verifies.
    let golden = rca(8).unwrap();
    let copy = mutate_kind(&golden, usize::MAX, CellKind::Maj3);
    assert!(verify_product(&copy, 40, 1, 2, 7).is_correct());
}

#[test]
fn verifier_rejects_output_bit_swap() {
    // Swap two product bits of a correct multiplier.
    let golden = wallace(8).unwrap();
    let mut b = NetlistBuilder::new("swapped");
    for cell in golden.cells() {
        match cell.kind {
            CellKind::Input => {
                b.add_input(cell.name.clone());
            }
            CellKind::Output => {
                let name = match cell.name.as_str() {
                    "p3" => "p4".to_string(),
                    "p4" => "p3".to_string(),
                    other => other.to_string(),
                };
                b.add_output(name, cell.inputs[0]);
            }
            _ => {
                b.add_named_cell(cell.kind, cell.name.clone(), &cell.inputs);
            }
        }
    }
    let swapped = b.build().expect("valid structure");
    assert!(!verify_product(&swapped, 40, 1, 2, 3).is_correct());
}

#[test]
fn wide_multipliers_stay_consistent() {
    // 24- and 32-bit instances: generators are width-parametric well
    // beyond the paper's 16 bits.
    for width in [24usize, 32] {
        let nl = wallace(width).unwrap();
        let out = verify_product(&nl, 25, 1, 2, width as u64);
        assert!(out.is_correct(), "wallace w={width}: {out:?}");
    }
    let nl = rca(24).unwrap();
    assert!(verify_product(&nl, 25, 1, 2, 11).is_correct());
}

#[test]
fn cell_counts_scale_quadratically() {
    // Array multipliers are O(W^2) in cells — the scaling a user of the
    // library would rely on when extrapolating the paper's results.
    let n8 = rca(8).unwrap().logic_cell_count() as f64;
    let n16 = rca(16).unwrap().logic_cell_count() as f64;
    let n32 = rca(32).unwrap().logic_cell_count() as f64;
    let r1 = n16 / n8;
    let r2 = n32 / n16;
    assert!(r1 > 3.0 && r1 < 5.0, "8->16 ratio {r1}");
    assert!(r2 > 3.0 && r2 < 5.0, "16->32 ratio {r2}");
}
