//! Differential harness locking the static analyses to the timed
//! engine they describe:
//!
//! * **window soundness** — every event the event-wheel engine pops
//!   (stale preempted ones included) lies inside the static arrival
//!   window [`TimingAnalysis`] computed for its net, with exact `u64`
//!   comparisons on the shared stride time base;
//! * **glitch-bound soundness** — per cell, the engine's counted
//!   known↔known transitions over `C` cycles never exceed
//!   `C × bound` from [`GlitchProfile`];
//! * on the full 13-architecture multiplier suite, the aggregated
//!   static activity bound dominates the *measured* pooled timed
//!   activity, and the static glitch factor dominates the measured
//!   one.

use optpower_mult::Architecture;
use optpower_netlist::{CellKind, Library, Netlist, NetlistBuilder};
use optpower_sim::{measure_activity, Engine, TimedSim};
use optpower_sta::{GlitchProfile, LintReport, LintRule, TimingAnalysis};
use proptest::prelude::*;

/// Builds a random mixed combinational/sequential DAG with `a` and `b`
/// input buses of two bits each, gate kinds and fan-ins drawn from
/// `picks`, and the last four nets exposed as the `p` output bus —
/// the same generator shape `tests/timed_differential.rs` uses.
fn random_netlist(picks: &[(u8, u32, u32, u32)]) -> Netlist {
    let mut b = NetlistBuilder::new("random");
    let mut nets = Vec::new();
    for i in 0..2 {
        nets.push(b.add_input(format!("a{i}")));
    }
    for i in 0..2 {
        nets.push(b.add_input(format!("b{i}")));
    }
    for &(kind_ix, x, y, z) in picks {
        let kinds = [
            CellKind::Buf,
            CellKind::Inv,
            CellKind::And2,
            CellKind::Nand2,
            CellKind::Or2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::Xnor2,
            CellKind::Mux2,
            CellKind::Xor3,
            CellKind::Maj3,
            CellKind::Dff,
        ];
        let kind = kinds[kind_ix as usize % kinds.len()];
        let pick = |v: u32| nets[v as usize % nets.len()];
        let ins: Vec<_> = match kind.arity() {
            1 => vec![pick(x)],
            2 => vec![pick(x), pick(y)],
            _ => vec![pick(x), pick(y), pick(z)],
        };
        nets.push(b.add_cell(kind, &ins));
    }
    for (i, net) in nets.iter().rev().take(4).enumerate() {
        b.add_output(format!("p{i}"), *net);
    }
    b.build().expect("random DAG is valid by construction")
}

/// Runs the recording timed engine over `stimulus`, asserting every
/// popped event against the static window of its net, and returns the
/// per-cell transition counters for the glitch-bound check.
fn drive_and_check_windows(
    nl: &Netlist,
    lib: &Library,
    sta: &TimingAnalysis,
    stimulus: &[u64],
) -> Vec<u64> {
    let mut sim = TimedSim::new(nl, lib).expect("cmos13 delays are valid");
    sim.record_events(true);
    for (t, s) in stimulus.iter().enumerate() {
        sim.set_input_bits("a", s & 3);
        sim.set_input_bits("b", (s >> 2) & 3);
        sim.step().expect("acyclic netlists settle");
        for ev in sim.take_events() {
            let (earliest, latest) = sta.window_units(ev.net);
            assert!(
                earliest <= ev.time && ev.time <= latest,
                "cycle {t}: event on {:?} at stride-time {} escapes the \
                 static window [{earliest}, {latest}]",
                ev.net,
                ev.time,
            );
        }
    }
    sim.transitions().to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Window + glitch-bound soundness on random netlists: every
    /// engine event sits inside its net's static arrival window, and
    /// no cell's transition count exceeds `cycles × bound`.
    #[test]
    fn events_stay_inside_static_windows(
        picks in prop::collection::vec((any::<u8>(), any::<u32>(), any::<u32>(), any::<u32>()), 5..40),
        stimulus in prop::collection::vec(any::<u64>(), 3..12),
    ) {
        let nl = random_netlist(&picks);
        let lib = Library::cmos13();
        let sta = TimingAnalysis::analyze(&nl, &lib);
        let glitch = GlitchProfile::compute(&nl, &sta);
        let transitions = drive_and_check_windows(&nl, &lib, &sta, &stimulus);
        let cycles = stimulus.len() as u64;
        for (id, cell) in nl.logic_cells() {
            let bound = glitch.bound(cell.output);
            prop_assert!(
                transitions[id.index()] <= cycles * bound,
                "{:?} ({:?}) toggled {} times in {} cycles, bound {}",
                id, cell.kind, transitions[id.index()], cycles, bound
            );
        }
    }
}

/// Acceptance criterion: on every one of the thirteen multiplier
/// architectures the lint gate passes, every timed-engine event lies
/// inside its static arrival window, per-cell transitions respect the
/// static glitch bound, and the aggregated static numbers dominate
/// the measured ones.
#[test]
fn full_architecture_suite_obeys_static_bounds() {
    let lib = Library::cmos13();
    for arch in Architecture::ALL {
        let design = arch.generate(16).unwrap();
        let nl = &design.netlist;

        // The real generators produce lint-clean-of-errors netlists;
        // the Runtime preflight relies on exactly this.
        let report = LintReport::lint(nl);
        assert!(
            report.gate().is_ok(),
            "{arch}: lint gate rejects a generator netlist: {}",
            report.render_text()
        );

        let sta = TimingAnalysis::analyze(nl, &lib);
        let glitch = GlitchProfile::compute(nl, &sta);

        // Event-level: windows + per-cell bounds over a short run.
        let cycles = 3 * design.cycles_per_item as usize;
        let stimulus: Vec<u64> = (0..cycles as u64).map(|i| i.wrapping_mul(0x9e37)).collect();
        let mut sim = TimedSim::new(nl, &lib).unwrap();
        sim.record_events(true);
        for s in &stimulus {
            sim.set_input_bits("a", *s & 0xffff);
            sim.set_input_bits("b", (*s >> 16) & 0xffff);
            sim.step().unwrap();
            for ev in sim.take_events() {
                let (earliest, latest) = sta.window_units(ev.net);
                assert!(
                    earliest <= ev.time && ev.time <= latest,
                    "{arch}: event on {:?} at {} escapes [{earliest}, {latest}]",
                    ev.net,
                    ev.time,
                );
            }
        }
        let transitions = sim.transitions();
        for (id, cell) in nl.logic_cells() {
            let bound = glitch.bound(cell.output);
            assert!(
                transitions[id.index()] <= cycles as u64 * bound,
                "{arch}: {id:?} ({:?}) toggled {} times in {cycles} cycles, bound {bound}",
                cell.kind,
                transitions[id.index()],
            );
        }

        // Aggregate: the static activity bound is a hard ceiling on
        // the measured per-item timed activity, and (empirically, on
        // this suite) the static glitch factor dominates the measured
        // a(timed)/a(zero-delay) ratio.
        let timed =
            measure_activity(nl, &lib, Engine::Timed, 8, design.cycles_per_item, 2, 7).unwrap();
        let bound_per_item = glitch.mean_cell_bound() * f64::from(design.cycles_per_item);
        assert!(
            timed.activity <= bound_per_item + 1e-9,
            "{arch}: measured activity {} exceeds static bound {}",
            timed.activity,
            bound_per_item
        );
        let zd = measure_activity(
            nl,
            &lib,
            Engine::BitParallel,
            8,
            design.cycles_per_item,
            2,
            7,
        )
        .unwrap();
        let measured_factor = timed.activity / zd.activity;
        assert!(
            glitch.static_glitch_factor() + 1e-9 >= measured_factor,
            "{arch}: static factor {} below measured {}",
            glitch.static_glitch_factor(),
            measured_factor
        );
    }
}

/// A deliberately dirty netlist on which every one of the seven lint
/// rules fires at least once:
///
/// * `a0`/`a2` with no `a1` — width-hazard (L007);
/// * `dup = Xor2(a0, a0)` — arity-hazard (L006);
/// * `fold = And2(const1, const0)` — constant-foldable (L003);
/// * `qx = Dff(qx)` self-loop — x-source (L004, the one error);
/// * `hub = Inv(x0)` fanning out to nine buffers — fanout-outlier
///   (L005; the hub is a logic cell because input-driven nets are
///   exempt from the rule);
/// * `dead1 → dead2` chain reaching no endpoint — two
///   unreachable-cells (L001), with `dead2`'s sink-less output net the
///   floating-net (L002).
fn dirty_netlist() -> Netlist {
    let mut b = NetlistBuilder::new("dirty");
    let a0 = b.add_input("a0");
    let a2 = b.add_input("a2");
    let x = b.add_input("x0");
    let c1 = b.add_cell(CellKind::Const1, &[]);
    let c0 = b.add_cell(CellKind::Const0, &[]);
    let fold = b.add_cell(CellKind::And2, &[c1, c0]);
    let dup = b.add_cell(CellKind::Xor2, &[a0, a0]);
    let qx = b.add_cell(CellKind::Dff, &[a0]);
    b.rewire(qx, 0, qx);
    let hub = b.add_cell(CellKind::Inv, &[x]);
    let bufs: Vec<_> = (0..9).map(|_| b.add_cell(CellKind::Buf, &[hub])).collect();
    let dead1 = b.add_cell(CellKind::Inv, &[a2]);
    let _dead2 = b.add_cell(CellKind::Buf, &[dead1]);
    b.add_output("p0", fold);
    b.add_output("p1", dup);
    b.add_output("p2", qx);
    for (i, &buf) in bufs.iter().enumerate() {
        b.add_output(format!("p{}", 3 + i), buf);
    }
    b.build().unwrap()
}

/// Golden lint report: on the dirty fixture every rule fires, the
/// x-source gates, and both renderings are byte-stable
/// (`UPDATE_GOLDENS=1 cargo test -q --test sta_differential`
/// refreshes).
#[test]
fn golden_dirty_lint_report() {
    let report = LintReport::lint(&dirty_netlist());
    for rule in LintRule::ALL {
        assert!(
            report.diagnostics().iter().any(|d| d.rule == rule),
            "rule {} never fired:\n{}",
            rule.id(),
            report.render_text()
        );
    }
    assert_eq!(report.error_count(), 1);
    assert!(report.gate().is_err(), "the x-source must gate");
    golden_compare("tests/golden/dirty_lint.txt", &report.render_text());
    golden_compare(
        "tests/golden/dirty_lint.json",
        &format!("{}\n", report.to_json()),
    );
}

fn golden_compare(path: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(path);
    if std::env::var_os("UPDATE_GOLDENS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden {} ({e}); run UPDATE_GOLDENS=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "golden drift at {} (UPDATE_GOLDENS=1 refreshes after intentional changes)",
        path.display()
    );
}
