//! Umbrella crate holding the workspace examples and integration tests.
//!
//! The library API lives in the [`optpower`] crate (re-exported here as
//! [`core_api`]); the experiment harness lives in `optpower-report`.

pub use optpower as core_api;
