#!/usr/bin/env python3
"""Parse `cargo bench` output (the workspace's criterion shim) into the
committed BENCH_*.json summary format.

The shim prints one line per benchmark:

    bench <id>    mean <value> <unit> min <value> <unit>

This script normalises every timing to nanoseconds, derives the
serial-vs-parallel speedups the CI bench job tracks, and writes a JSON
document:

    {
      "schema": "optpower-bench/v1",
      "bench": "<bench target name>",
      "commit": "<sha or null>",
      "entries": [{"id": ..., "mean_ns": ..., "min_ns": ...}, ...],
      "speedups": {"<label>": {"serial_mean_ns": ..., "parallel_mean_ns": ...,
                               "speedup": ..., "speedup_min": ...}, ...},
      "notes": {...}   # free-form, carried over via --notes-from
    }

Each speedup pair carries two ratios: "speedup" from the mean timings
and "speedup_min" from the per-run minima. On a busy shared runner the
means absorb scheduler interference (the same row can swing tens of
percent between runs); the min is the noise-robust statistic, so
guards with tight margins should read "speedup_min".

Usage: parse_bench.py <bench-output.txt> <out.json> [--bench NAME]
                      [--notes-from <existing-summary.json>]

--notes-from copies the "notes" object of an existing summary (for the
CI job: the committed BENCH_sweep.json) into the new document, so
durable annotations — e.g. how to confirm the timed multi-core >=5x
target from the CI artifact — travel with every generated summary.
The source is read before the output is written, so reading from and
writing to the same path is safe.

Not every speedup row is a parallelism ratio: the serial_core/parallel
id pairing is just "reference vs candidate". The prune_build_wallace16
row pairs the raw (unpruned) Wallace netlist build against the
production pruned one; its ratio is raw/pruned build time and the
acceptance is "speedup_min" >= 0.95 (pruning must not slow netlist
build by more than 5%; the margin is far below run-to-run mean noise
on a 1-core container, so this guard reads the min-based ratio).

Rows listed in ACCEPTANCE are hard gates: when such a row is present
in the parsed output, its "speedup_min" must meet the listed floor or
the script exits non-zero (rows absent from the output are skipped, so
partial bench runs still parse). The wide-plane rows gate the 256/512
lane engines against the 64-lane engine at equal stimulus volume.
"""

import json
import os
import re
import sys

LINE = re.compile(
    r"^bench\s+(?P<id>\S+)\s+mean\s+(?P<mean>[0-9.]+)\s*(?P<mean_unit>ns|µs|us|ms|s)"
    r"\s+min\s+(?P<min>[0-9.]+)\s*(?P<min_unit>ns|µs|us|ms|s)\s*$"
)

NS_PER = {"ns": 1.0, "us": 1e3, "µs": 1e3, "ms": 1e6, "s": 1e9}

# Hard speedup_min floors, enforced whenever the row is present.
# dist_overhead_wallace16 is another reference-vs-candidate row: the
# same single-shard Wallace16 characterization run locally vs through
# a loopback coordinator/worker cluster. Its ratio is local/dist time,
# and the 0.9 floor caps the wire protocol's overhead (connect, frame
# codec, payload re-parse, merge) at ~10% of the job it ships.
ACCEPTANCE = {
    "bitparallel_256_wallace16": 2.0,
    "bitparallel_512_wallace16": 2.0,
    "dist_overhead_wallace16": 0.9,
}


def to_ns(value: str, unit: str) -> float:
    return float(value) * NS_PER[unit]


def parse(text: str):
    entries = []
    for line in text.splitlines():
        m = LINE.match(line.strip())
        if m:
            entries.append(
                {
                    "id": m.group("id"),
                    "mean_ns": to_ns(m.group("mean"), m.group("mean_unit")),
                    "min_ns": to_ns(m.group("min"), m.group("min_unit")),
                }
            )
    return entries


def derive_speedups(entries):
    """Pairs sweep/serial_core/<label> with sweep/parallel/<label>."""
    by_id = {e["id"]: e for e in entries}
    speedups = {}
    for eid, entry in by_id.items():
        m = re.match(r"^(?P<prefix>.+)/serial_core/(?P<label>.+)$", eid)
        if not m:
            continue
        partner = f"{m.group('prefix')}/parallel/{m.group('label')}"
        if partner not in by_id:
            continue
        serial, parallel = entry["mean_ns"], by_id[partner]["mean_ns"]
        serial_min, parallel_min = entry["min_ns"], by_id[partner]["min_ns"]
        speedups[m.group("label")] = {
            "serial_mean_ns": serial,
            "parallel_mean_ns": parallel,
            "speedup": serial / parallel if parallel > 0 else None,
            "speedup_min": serial_min / parallel_min if parallel_min > 0 else None,
        }
    return speedups


def check_acceptance(speedups):
    """Failed hard gates: [(label, floor, speedup_min), ...]."""
    failures = []
    for label, floor in ACCEPTANCE.items():
        row = speedups.get(label)
        if row is None:
            continue
        ratio = row.get("speedup_min")
        if ratio is None or ratio < floor:
            failures.append((label, floor, ratio))
    return failures


def read_notes(path):
    """The "notes" object of an existing summary, or None."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f).get("notes")
    except (OSError, ValueError) as e:
        print(f"warning: no notes carried from {path}: {e}", file=sys.stderr)
        return None


def main(argv):
    if len(argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    src, dst = argv[1], argv[2]
    bench_name = "sweep"
    notes = None
    rest = argv[3:]
    while rest:
        flag = rest.pop(0)
        if flag == "--bench" and rest:
            bench_name = rest.pop(0)
        elif flag == "--notes-from" and rest:
            # Read now, before the output path (possibly the same
            # file) is overwritten.
            notes = read_notes(rest.pop(0))
        else:
            print(f"error: unknown argument {flag!r}", file=sys.stderr)
            return 2
    with open(src, encoding="utf-8") as f:
        entries = parse(f.read())
    if not entries:
        print(f"error: no bench lines found in {src}", file=sys.stderr)
        return 1
    doc = {
        "schema": "optpower-bench/v1",
        "bench": bench_name,
        "commit": os.environ.get("GITHUB_SHA"),
        "entries": entries,
        "speedups": derive_speedups(entries),
    }
    if notes is not None:
        doc["notes"] = notes
    with open(dst, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=False)
        f.write("\n")
    print(f"wrote {dst}: {len(entries)} entries, {len(doc['speedups'])} speedup pairs")
    failures = check_acceptance(doc["speedups"])
    for label, floor, ratio in failures:
        shown = "missing" if ratio is None else f"{ratio:.2f}"
        print(
            f"error: acceptance gate {label}: speedup_min {shown} < {floor}",
            file=sys.stderr,
        )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
