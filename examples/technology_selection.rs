//! Technology selection (the paper's Section 5), driven by the
//! parallel design-space exploration engine: evaluate the Wallace
//! family on all three STM CMOS09 flavours across a frequency range in
//! one `Grid`, then read the flavour table, the per-frequency winners
//! and the power/throughput Pareto front straight off the `ResultSet`.
//!
//! Run with: `cargo run --example technology_selection`

use optpower::reference::table1_arch_params;
use optpower_explore::{explore, ExploreConfig, Grid};
use optpower_tech::{Flavor, Technology};
use optpower_units::Hertz;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let flavors = [
        Flavor::UltraLowLeakage,
        Flavor::LowLeakage,
        Flavor::HighSpeed,
    ];
    // The Wallace family rows of Table 1 (indices 7..10), with the
    // per-cell capacitance back-computed from the published Pdyn; the
    // structural parameters are flavour-independent.
    let wallace_family: Vec<_> = table1_arch_params()?.drain(7..10).collect();
    let f0 = Hertz::new(31.25e6);
    let sweep_mhz = [2.0, 8.0, 31.25, 125.0, 250.0, 500.0];

    // One grid covers the whole study: 3 flavours x 3 architectures x
    // (paper frequency + sweep frequencies).
    let grid = Grid::builder()
        .technologies(flavors.iter().map(|&fl| Technology::stm_cmos09(fl)))
        .architectures(wallace_family.iter().cloned())
        .frequency(f0)
        .frequencies(sweep_mhz.iter().map(|&mhz| Hertz::new(mhz * 1e6)))
        .build()?;
    let results = explore(&grid, &ExploreConfig::default());

    // Records are in grid order: look points up via Grid::index_of.
    let ptot_uw = |flavor_ix: usize, arch_ix: usize, freq_ix: usize| {
        results.records()[grid.index_of(flavor_ix, arch_ix, freq_ix)]
            .optimum()
            .map(|o| o.ptot().value() * 1e6)
    };

    println!("Wallace family optimal power per flavour (f = 31.25 MHz):\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "arch", "ULL [uW]", "LL [uW]", "HS [uW]"
    );
    for (a, arch) in grid.architectures().iter().enumerate() {
        let cell = |t: usize| match ptot_uw(t, a, 0) {
            Some(p) => format!("{p:>10.2}"),
            None => format!("{:>10}", "-"),
        };
        println!("{:<18} {} {} {}", arch.name(), cell(0), cell(1), cell(2));
    }

    println!("\nfrequency sweep, basic Wallace — which flavour wins where:\n");
    println!(
        "{:>10}  {:>10} {:>10} {:>10}  winner",
        "f [MHz]", "ULL", "LL", "HS"
    );
    for (fi, &mhz) in sweep_mhz.iter().enumerate() {
        let mut best = (f64::INFINITY, "-");
        let mut row = Vec::new();
        for (t, flavor) in flavors.iter().enumerate() {
            let p = ptot_uw(t, 0, fi + 1).unwrap_or(f64::NAN);
            if p < best.0 {
                best = (p, flavor.abbreviation());
            }
            row.push(p);
        }
        println!(
            "{:>10.2}  {:>10.2} {:>10.2} {:>10.2}  {}",
            mhz, row[0], row[1], row[2], best.1
        );
    }

    let summary = results.summary();
    println!(
        "\nexplored {} design points on {} worker(s): {} closed, {} boundary-pinned, {} failed",
        summary.points,
        optpower_explore::available_workers(),
        summary.closed,
        summary.boundary_pinned,
        summary.failed,
    );
    println!("\nPareto front over (throughput, optimal total power):");
    for r in results.pareto_front() {
        let opt = r.optimum().expect("front members closed timing");
        println!(
            "  {:>8.2} MHz  {:>9.2} uW  {} / {}",
            r.frequency.value() / 1e6,
            opt.ptot().value() * 1e6,
            r.tech,
            r.arch,
        );
    }
    println!(
        "\nSection 5's structure reproduces: ULL always loses at the paper's\n\
         operating point, parallelisation *hurts* on HS (its leakage taxes\n\
         the doubled cell count) while it helps on ULL/LL, and the frequency\n\
         sweep shows the flavour crossovers — slow/low-leakage wins at low f,\n\
         fast/leaky as timing tightens. With the datasheet Io (no per-design\n\
         leakage calibration) the LL/HS crossover lands almost exactly at\n\
         31.25 MHz; the calibrated reproduction (`cargo run -p\n\
         optpower-report --bin table3`/`table4`) recovers the paper's exact\n\
         LL win."
    );
    Ok(())
}
