//! Technology selection (the paper's Section 5): evaluate the same
//! Wallace-family architectures on all three STM CMOS09 flavours and
//! show that the moderate Low-Leakage flavour beats both extremes —
//! plus a frequency sweep locating the crossovers.
//!
//! Run with: `cargo run --example technology_selection`

use optpower::reference::wallace_structure;
use optpower::{ArchParams, PowerModel};
use optpower_tech::{Flavor, Technology};
use optpower_units::{Farads, Hertz};

fn model_for(
    flavor: Flavor,
    wallace_index: usize,
    freq: Hertz,
) -> Result<PowerModel, optpower::ModelError> {
    let row = wallace_structure(wallace_index);
    // Per-cell capacitance back-computed from the published Pdyn of the
    // LL table; the structural parameters are flavour-independent.
    let c =
        row.pdyn_uw * 1e-6 / (f64::from(row.cells) * row.activity * 31.25e6 * row.vdd * row.vdd);
    let arch = ArchParams::builder(row.name)
        .cells(row.cells)
        .activity(row.activity)
        .logical_depth(row.ld_eff)
        .cap_per_cell(Farads::new(c))
        .build()?;
    PowerModel::from_technology(Technology::stm_cmos09(flavor), arch, freq)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let f0 = Hertz::new(31.25e6);
    println!("Wallace family optimal power per flavour (f = 31.25 MHz):\n");
    println!(
        "{:<18} {:>10} {:>10} {:>10}",
        "arch", "ULL [uW]", "LL [uW]", "HS [uW]"
    );
    for i in 0..3 {
        let mut cells = Vec::new();
        for flavor in [
            Flavor::UltraLowLeakage,
            Flavor::LowLeakage,
            Flavor::HighSpeed,
        ] {
            let p = model_for(flavor, i, f0)?.optimize()?.ptot().value() * 1e6;
            cells.push(p);
        }
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>10.2}",
            wallace_structure(i).name,
            cells[0],
            cells[1],
            cells[2]
        );
    }

    println!("\nfrequency sweep, basic Wallace — which flavour wins where:\n");
    println!(
        "{:>10}  {:>10} {:>10} {:>10}  winner",
        "f [MHz]", "ULL", "LL", "HS"
    );
    for mhz in [2.0, 8.0, 31.25, 125.0, 250.0, 500.0] {
        let f = Hertz::new(mhz * 1e6);
        let mut best = (f64::INFINITY, "-");
        let mut row = Vec::new();
        for flavor in [
            Flavor::UltraLowLeakage,
            Flavor::LowLeakage,
            Flavor::HighSpeed,
        ] {
            let p = match model_for(flavor, 0, f)?.optimize() {
                Ok(opt) => opt.ptot().value() * 1e6,
                Err(_) => f64::NAN,
            };
            if p < best.0 {
                best = (p, flavor.abbreviation());
            }
            row.push(p);
        }
        println!(
            "{:>10.2}  {:>10.2} {:>10.2} {:>10.2}  {}",
            mhz, row[0], row[1], row[2], best.1
        );
    }
    println!(
        "\nSection 5's structure reproduces: ULL always loses at the paper's\n\
         operating point, parallelisation *hurts* on HS (its leakage taxes\n\
         the doubled cell count) while it helps on ULL/LL, and the frequency\n\
         sweep shows the flavour crossovers — slow/low-leakage wins at low f,\n\
         fast/leaky as timing tightens. With the datasheet Io (no per-design\n\
         leakage calibration) the LL/HS crossover lands almost exactly at\n\
         31.25 MHz; the calibrated reproduction (`cargo run -p\n\
         optpower-report --bin table3`/`table4`) recovers the paper's exact\n\
         LL win."
    );
    Ok(())
}
