//! Architecture selection (the paper's Section 4), end to end and
//! ab-initio: generate all thirteen 16-bit multiplier netlists, measure
//! their activity (with glitches) and logical depth with our own
//! simulator and STA, then rank them by optimal total power.
//!
//! Run with: `cargo run --release --example architecture_selection`

use optpower_report::{ab_initio_table, render_ab_initio};
use optpower_tech::Flavor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("generating, simulating and optimising 13 architectures (LL flavour)...\n");
    let mut rows = ab_initio_table(Flavor::LowLeakage, 150, 42)?;
    println!("{}", render_ab_initio(&rows));

    rows.sort_by(|a, b| a.ptot_uw.total_cmp(&b.ptot_uw));
    println!("ranking by optimal total power:");
    for (i, r) in rows.iter().enumerate() {
        println!(
            "  {:>2}. {:<18} {:>10.2} uW",
            i + 1,
            r.arch.paper_name(),
            r.ptot_uw
        );
    }

    let best = &rows[0];
    let worst = rows.last().expect("thirteen rows");
    println!(
        "\nThe paper's Section 4 conclusions, reproduced from scratch:\n\
         - best architecture: {} ({:.2} uW)\n\
         - worst: {} ({:.2} uW), {:.0}x more power — sequential designs\n\
           pay both a large activity (>1 per data period) and a huge\n\
           effective logical depth (paths repeated every internal cycle).",
        best.arch.paper_name(),
        best.ptot_uw,
        worst.arch.paper_name(),
        worst.ptot_uw,
        worst.ptot_uw / best.ptot_uw,
    );
    Ok(())
}
