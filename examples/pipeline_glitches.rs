//! The horizontal-vs-diagonal pipelining story (the paper's Figures 3/4
//! and the Section 4 glitch observation), reproduced mechanically:
//! build both pipeline styles of the 16-bit RCA, time them, simulate
//! them with an inertial-delay event engine, and show the trade-off —
//! diagonal cuts are deeper (shorter LD) but glitchier (higher a).
//!
//! Run with: `cargo run --release --example pipeline_glitches`

use optpower_report::{figure34, render_figure34};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fig = figure34(16, 150)?;
    println!("{}", render_figure34(&fig));

    let get = |style: &str, stages: u32| {
        fig.summaries
            .iter()
            .find(|s| s.style == style && s.stages == stages)
            .expect("summary present")
    };
    for stages in [2u32, 4] {
        let h = get("horizontal", stages);
        let d = get("diagonal", stages);
        println!(
            "{stages}-stage: diagonal is {:.0}% shorter in LD but pays {:+.0}% activity \
             (glitch factor {:.2} vs {:.2})",
            (1.0 - d.logical_depth / h.logical_depth) * 100.0,
            (d.activity_timed / h.activity_timed - 1.0) * 100.0,
            d.glitch_factor(),
            h.glitch_factor(),
        );
    }
    println!(
        "\nThis is the paper's conclusion: \"a diagonal pipeline, presenting a\n\
         shorter logical depth than the horizontal one, was penalized due to\n\
         the increased number of glitches (reflected by the increase in\n\
         activity)\" — here measured from an actual netlist, not asserted."
    );
    Ok(())
}
