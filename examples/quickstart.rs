//! Quickstart: find the optimal (Vdd, Vth) working point of a circuit
//! and compare the closed-form Eq. 13 against the full numerical
//! optimisation — the paper's core result in ~40 lines.
//!
//! Run with: `cargo run --example quickstart`

use optpower::{ArchParams, PowerModel};
use optpower_tech::{Flavor, Technology};
use optpower_units::{Farads, Hertz, SiFormat};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The basic 16-bit ripple-carry array multiplier of Table 1:
    // 608 cells, activity 0.5056, logical depth 61, at 31.25 MHz.
    let arch = ArchParams::builder("RCA 16x16")
        .cells(608)
        .activity(0.5056)
        .logical_depth(61.0)
        .cap_per_cell(Farads::new(70.5e-15))
        .build()?;

    let tech = Technology::stm_cmos09(Flavor::LowLeakage);
    let model = PowerModel::from_technology(tech, arch, Hertz::new(31.25e6))?;

    // Running at nominal voltages wastes power...
    let nominal = model.power_at(tech.vdd_nom(), tech.vth0_nom());
    println!(
        "at nominal (1.2 V / 354 mV): {}",
        nominal.total().value().si_format("W")
    );

    // ...the optimal working point is far cheaper:
    let opt = model.optimize()?;
    println!(
        "optimal point: Vdd = {}, Vth = {}, Ptot = {} (Pdyn/Pstat = {:.2})",
        opt.vdd(),
        opt.vth(),
        opt.ptot().value().si_format("W"),
        opt.breakdown().dyn_static_ratio(),
    );

    // The paper's Eq. 13 predicts the same optimum in closed form:
    let cf = model.closed_form()?;
    let err = (cf.ptot.value() - opt.ptot().value()) / opt.ptot().value() * 100.0;
    println!(
        "Eq. 13: Vdd = {}, Ptot = {}  (error vs numerical: {err:+.2} %)",
        cf.vdd,
        cf.ptot.value().si_format("W"),
    );
    println!(
        "savings vs nominal: {:.1}x",
        nominal.total().value() / opt.ptot().value()
    );
    Ok(())
}
